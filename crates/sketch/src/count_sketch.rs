//! The count-sketch of Charikar, Chen and Farach-Colton, as used by the
//! precision Lp sampler (Section 2 of the paper).
//!
//! For a parameter `m`, the sketch keeps `l = O(log n)` rows of `6m` buckets.
//! Row `j` uses a pairwise-independent bucket hash `h_j : [n] → [6m]` and a
//! pairwise-independent sign hash `g_j : [n] → {±1}` and maintains
//! `y_{k,j} = Σ_{i : h_j(i) = k} g_j(i)·x_i`. The point estimate of `x_i` is
//! the median over rows of `g_j(i)·y_{h_j(i),j}`.
//!
//! Lemma 1 of the paper summarises the guarantee: with high probability every
//! coordinate satisfies `|x_i − x*_i| ≤ Err^m_2(x)/√m`, and the best m-sparse
//! approximation `x̂` of the output satisfies
//! `Err^m_2(x) ≤ ‖x − x̂‖₂ ≤ 10·Err^m_2(x)`. Both quantities are exposed here
//! ([`CountSketch::estimate`], [`CountSketch::best_m_sparse`]) because the
//! sampler's recovery stage needs exactly them.

use lps_hash::{PairwiseHash, SeedSequence};
use lps_stream::{counter_bits_for, SpaceBreakdown, SpaceUsage};

use crate::compensated::kahan_add;
use crate::linear::LinearSketch;
use crate::mergeable::{Mergeable, StateDigest};
use crate::persist::{tags, DecodeError, Persist, WireReader, WireWriter};

/// Width multiplier: the paper's count-sketch uses `6m` buckets per row.
pub const WIDTH_FACTOR: usize = 6;

/// A count-sketch over vectors indexed by `[0, n)` with real-valued entries.
#[derive(Debug, Clone)]
pub struct CountSketch {
    dimension: u64,
    m: usize,
    rows: usize,
    width: usize,
    /// Row-major bucket counters: `table[j * width + k]`.
    table: Vec<f64>,
    /// Kahan compensation terms, parallel to `table`. Identically zero for
    /// integer workloads (see [`crate::compensated`]).
    comp: Vec<f64>,
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<PairwiseHash>,
}

/// A sparse approximation produced by [`CountSketch::best_m_sparse`]:
/// the `m` coordinates with the largest estimated magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseApprox {
    /// `(index, estimated value)` pairs, sorted by decreasing |value|.
    pub entries: Vec<(u64, f64)>,
}

impl SparseApprox {
    /// The estimated value at `index` (zero if not among the kept entries).
    pub fn get(&self, index: u64) -> f64 {
        self.entries.iter().find(|(i, _)| *i == index).map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// Indices of the kept entries.
    pub fn indices(&self) -> Vec<u64> {
        self.entries.iter().map(|(i, _)| *i).collect()
    }
}

/// The number of rows `l = O(log n)` the paper's analysis asks for: we use
/// `max(5, ⌈1.5·log2 n⌉)` rounded up to the next odd number so the median is
/// a single row value.
pub fn rows_for_dimension(n: u64) -> usize {
    let l = ((n.max(2) as f64).log2() * 1.5).ceil() as usize;
    let l = l.max(5);
    if l.is_multiple_of(2) {
        l + 1
    } else {
        l
    }
}

impl CountSketch {
    /// Create a count-sketch with the paper's shape: `rows` rows of `6m`
    /// buckets each, over vectors of the given dimension.
    pub fn new(dimension: u64, m: usize, rows: usize, seeds: &mut SeedSequence) -> Self {
        assert!(dimension > 0);
        assert!(m >= 1, "sketch parameter m must be at least 1");
        assert!(rows >= 1, "need at least one row");
        let width = WIDTH_FACTOR * m;
        let mut bucket_hashes = Vec::with_capacity(rows);
        let mut sign_hashes = Vec::with_capacity(rows);
        for _ in 0..rows {
            bucket_hashes.push(PairwiseHash::new(seeds));
            sign_hashes.push(PairwiseHash::new(seeds));
        }
        CountSketch {
            dimension,
            m,
            rows,
            width,
            table: vec![0.0; rows * width],
            comp: vec![0.0; rows * width],
            bucket_hashes,
            sign_hashes,
        }
    }

    /// Create a count-sketch with the default `O(log n)` number of rows.
    pub fn with_default_rows(dimension: u64, m: usize, seeds: &mut SeedSequence) -> Self {
        let rows = rows_for_dimension(dimension);
        CountSketch::new(dimension, m, rows, seeds)
    }

    /// The sketch parameter `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of rows `l`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of buckets per row (`6m`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Point estimate `x*_i`: median over rows of the signed bucket value.
    pub fn estimate(&self, index: u64) -> f64 {
        debug_assert!(index < self.dimension);
        let mut row_values: Vec<f64> = Vec::with_capacity(self.rows);
        for j in 0..self.rows {
            let k = self.bucket_hashes[j].bucket(index, self.width);
            let sign = self.sign_hashes[j].sign(index) as f64;
            row_values.push(sign * self.table[j * self.width + k]);
        }
        median(&mut row_values)
    }

    /// Decode estimates for every coordinate (`O(n·l)` time). This is the
    /// offline recovery step of the sampler; the streaming space bound is not
    /// affected because decoding happens after the stream ends.
    pub fn decode_all(&self) -> Vec<f64> {
        (0..self.dimension).map(|i| self.estimate(i)).collect()
    }

    /// The index with the largest estimated magnitude and its estimate
    /// (step 4 of the recovery stage in Figure 1).
    pub fn argmax_estimate(&self) -> (u64, f64) {
        let mut best_i = 0u64;
        let mut best_v = 0.0f64;
        for i in 0..self.dimension {
            let v = self.estimate(i);
            if v.abs() > best_v.abs() {
                best_i = i;
                best_v = v;
            }
        }
        (best_i, best_v)
    }

    /// The best m-sparse approximation `x̂` of the decoded output `x*`:
    /// the `count` coordinates with largest |x*_i| (Lemma 1). By default the
    /// sampler uses `count = self.m()`.
    pub fn best_m_sparse(&self, count: usize) -> SparseApprox {
        let mut all: Vec<(u64, f64)> =
            (0..self.dimension).map(|i| (i, self.estimate(i))).filter(|(_, v)| *v != 0.0).collect();
        all.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        all.truncate(count);
        SparseApprox { entries: all }
    }

    /// Apply this sketch's linear map to an explicit sparse vector, returning
    /// the resulting sketch (same seeds, fresh counters). Used by the
    /// sampler's recovery stage to compute `L'(ẑ)` for the already-recovered
    /// sparse approximation ẑ.
    pub fn sketch_of_sparse(&self, entries: &[(u64, f64)]) -> CountSketch {
        let mut fresh = CountSketch {
            dimension: self.dimension,
            m: self.m,
            rows: self.rows,
            width: self.width,
            table: vec![0.0; self.rows * self.width],
            comp: vec![0.0; self.rows * self.width],
            bucket_hashes: self.bucket_hashes.clone(),
            sign_hashes: self.sign_hashes.clone(),
        };
        for &(i, v) in entries {
            fresh.update(i, v);
        }
        fresh
    }

    fn assert_same_shape(&self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.rows, other.rows, "row-count mismatch");
        assert_eq!(self.width, other.width, "width mismatch");
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone. The table shape is set by `(rows, width)`, not by `n`, and
    /// bit-identical recombination requires hashing global coordinates with
    /// the same functions, so restriction constrains the *stream* a shard
    /// sees (and with it the bucket working set), not the table.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        crate::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge: absorb a sibling shard whose ingested key range
    /// was disjoint from ours. Buckets are shared across key ranges through
    /// hashing, so the union is counter addition — identical to
    /// [`Mergeable::merge_from`], kept as a named operation so key-range
    /// recombination states its precondition.
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

impl LinearSketch for CountSketch {
    fn update(&mut self, index: u64, delta: f64) {
        debug_assert!(index < self.dimension, "index out of range");
        for j in 0..self.rows {
            let k = self.bucket_hashes[j].bucket(index, self.width);
            let sign = self.sign_hashes[j].sign(index) as f64;
            let cell = j * self.width + k;
            kahan_add(&mut self.table[cell], &mut self.comp[cell], sign * delta);
        }
    }

    /// Batched fast path: coalesce repeated indices (exact integer sums) and
    /// walk the bucket table in row-major order, so each pass touches one
    /// row's `6m` contiguous counters instead of striding across the whole
    /// table per update. Signed-unit buckets keep every counter an exact
    /// integer in f64 for integer workloads, so coalescing is
    /// state-identical to the sequential loop.
    ///
    /// This is the same rows×keys shape as the AMS sign walk: *many* degree-1
    /// polynomials evaluated at *one* key per entry. Both hash families are
    /// transposed into [`lps_hash::simd::PolyBank`]s once per batch and
    /// evaluated lane-parallel across rows per key; the Kahan accumulation
    /// below then replays row-major in exactly the original entry order, so
    /// the float state is bit-identical to the scalar walk (the multiply-shift
    /// bucket reduction is the one from [`lps_hash::KWiseHash::bucket`]).
    fn process_batch(&mut self, updates: &[lps_stream::Update]) {
        let coalesced = lps_stream::coalesce_updates(updates);
        if coalesced.is_empty() {
            return;
        }
        let rows = self.rows;
        let bucket_bank = lps_hash::simd::PolyBank::new(
            self.bucket_hashes.iter().map(|h| h.kwise().coefficients()),
        );
        let sign_bank = lps_hash::simd::PolyBank::new(
            self.sign_hashes.iter().map(|h| h.kwise().coefficients()),
        );
        // Entry-major hash matrices: entry `e`'s row-`j` values live at
        // `e * rows + j`. Batches are chunked upstream (DEFAULT_BATCH_SIZE /
        // the engine dispatch batch), so the scratch stays batch-bounded.
        let mut buckets = vec![0usize; coalesced.len() * rows];
        let mut signs = vec![0u64; coalesced.len() * rows];
        let mut hash_scratch = vec![0u64; rows];
        for (e, &(index, _)) in coalesced.iter().enumerate() {
            debug_assert!(index < self.dimension, "index out of range");
            bucket_bank.eval_key(index, &mut hash_scratch);
            for (j, &h) in hash_scratch.iter().enumerate() {
                buckets[e * rows + j] = ((h as u128 * self.width as u128) >> 61) as usize;
            }
            sign_bank.eval_key(index, &mut signs[e * rows..(e + 1) * rows]);
        }
        for j in 0..rows {
            let row = &mut self.table[j * self.width..(j + 1) * self.width];
            let comp_row = &mut self.comp[j * self.width..(j + 1) * self.width];
            for (e, &(_, delta)) in coalesced.iter().enumerate() {
                let k = buckets[e * rows + j];
                let sign = if signs[e * rows + j] & 1 == 1 { 1.0 } else { -1.0 };
                kahan_add(&mut row[k], &mut comp_row[k], sign * delta as f64);
            }
        }
    }

    fn merge(&mut self, other: &Self) {
        self.assert_same_shape(other);
        // Plain elementwise addition of both vectors: Mergeable requires a
        // bitwise-commutative merge, which a compensated add would break.
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += b;
        }
        for (a, b) in self.comp.iter_mut().zip(other.comp.iter()) {
            *a += b;
        }
    }

    fn subtract(&mut self, other: &Self) {
        self.assert_same_shape(other);
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a -= b;
        }
        for (a, b) in self.comp.iter_mut().zip(other.comp.iter()) {
            *a -= b;
        }
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }
}

impl Mergeable for CountSketch {
    fn merge_from(&mut self, other: &Self) {
        LinearSketch::merge(self, other);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in &self.table {
            d.write_f64(v);
        }
        for &v in &self.comp {
            d.write_f64(v);
        }
        d.finish()
    }
}

impl Persist for CountSketch {
    const TAG: u16 = tags::COUNT_SKETCH;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_len(self.m);
        w.write_len(self.rows);
        for h in self.bucket_hashes.iter().chain(self.sign_hashes.iter()) {
            h.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for &v in &self.table {
            w.write_f64(v);
        }
        for &v in &self.comp {
            w.write_f64(v);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let m = seeds.read_count(0)?;
        let rows = seeds.read_count(1)?;
        if dimension == 0 || m == 0 || rows == 0 {
            return Err(DecodeError::Corrupt { context: "count-sketch shape must be non-zero" });
        }
        let mut bucket_hashes = Vec::with_capacity(rows);
        let mut sign_hashes = Vec::with_capacity(rows);
        for _ in 0..rows {
            bucket_hashes.push(PairwiseHash::decode_parts(seeds, counters)?);
        }
        for _ in 0..rows {
            sign_hashes.push(PairwiseHash::decode_parts(seeds, counters)?);
        }
        let width = m
            .checked_mul(WIDTH_FACTOR)
            .ok_or(DecodeError::Corrupt { context: "count-sketch width overflows" })?;
        let cells = rows
            .checked_mul(width)
            .ok_or(DecodeError::Corrupt { context: "count-sketch table overflows" })?;
        let table = counters.read_f64s(cells)?;
        let comp = counters.read_f64s(cells)?;
        Ok(CountSketch { dimension, m, rows, width, table, comp, bucket_hashes, sign_hashes })
    }
}

impl SpaceUsage for CountSketch {
    fn space(&self) -> SpaceBreakdown {
        let counters = (self.rows * self.width) as u64;
        // Each counter holds a signed sum of at most n values bounded by
        // poly(n); charge the standard O(log n) counter width.
        let counter_bits = counter_bits_for(self.dimension, self.dimension);
        let randomness: u64 = self
            .bucket_hashes
            .iter()
            .map(|h| h.random_bits())
            .chain(self.sign_hashes.iter().map(|h| h.random_bits()))
            .sum();
        SpaceBreakdown::new(counters, counter_bits, randomness)
    }
}

/// Median of a slice (averaging the two central elements for even lengths).
/// The slice is sorted in place.
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{TruthVector, TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn rows_for_dimension_is_odd_and_grows() {
        let a = rows_for_dimension(1 << 10);
        let b = rows_for_dimension(1 << 20);
        assert!(a % 2 == 1 && b % 2 == 1);
        assert!(b > a);
        assert!(rows_for_dimension(2) >= 5);
    }

    #[test]
    fn exact_recovery_of_sparse_vector() {
        // With m >= support size, the estimates of a sparse vector are exact
        // with overwhelming probability (collisions with other non-zeros are
        // the only error source and there are none beyond the support).
        let mut s = seeds(1);
        let mut cs = CountSketch::new(1 << 12, 8, 9, &mut s);
        let entries = [(5u64, 100.0), (77, -40.0), (1000, 3.0), (4095, 7.0)];
        for (i, v) in entries {
            cs.update(i, v);
        }
        for (i, v) in entries {
            let est = cs.estimate(i);
            assert!((est - v).abs() < 1e-9, "estimate {est} for coordinate {i} should equal {v}");
        }
    }

    #[test]
    fn estimate_error_bounded_by_lemma_1() {
        // Dense-ish vector: error per coordinate must be <= Err_m_2 / sqrt(m)
        // with high probability; we check the bound with a small slack factor
        // since "high probability" in Lemma 1 allows rare exceptions.
        let n: u64 = 4096;
        let m = 16usize;
        let mut s = seeds(2);
        let mut cs = CountSketch::with_default_rows(n, m, &mut s);
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        // a few heavy coordinates + light tail
        for i in 0..n {
            let v = if i % 500 == 0 { 1000 } else { (i % 7) as i64 - 3 };
            if v != 0 {
                stream.push(lps_stream::Update::new(i, v));
            }
        }
        cs.process(&stream);
        let truth = TruthVector::from_stream(&stream);
        let bound = truth.err_m_2(m) / (m as f64).sqrt();
        let mut violations = 0u64;
        for i in 0..n {
            let err = (cs.estimate(i) - truth.get(i) as f64).abs();
            if err > bound + 1e-9 {
                violations += 1;
            }
        }
        // Lemma 1 holds for all coordinates w.h.p.; tolerate a tiny number of
        // exceptions to keep the test robust across seeds.
        assert!(
            violations <= n / 200,
            "too many coordinates ({violations}) violate the Lemma 1 error bound {bound}"
        );
    }

    #[test]
    fn best_m_sparse_finds_heavy_coordinates() {
        let n: u64 = 2048;
        let mut s = seeds(3);
        let mut cs = CountSketch::with_default_rows(n, 10, &mut s);
        let heavy = [(3u64, 500.0), (700, -450.0), (1999, 600.0)];
        for (i, v) in heavy {
            cs.update(i, v);
        }
        for i in 0..n {
            cs.update(i, if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let approx = cs.best_m_sparse(3);
        let idx = approx.indices();
        for (i, _) in heavy {
            assert!(idx.contains(&i), "heavy coordinate {i} missing from top-3");
        }
        assert!(approx.get(3) > 400.0 && approx.get(700) < -350.0);
        assert_eq!(approx.get(12345 % n), 0.0);
    }

    #[test]
    fn argmax_matches_best_1_sparse() {
        let n: u64 = 512;
        let mut s = seeds(4);
        let mut cs = CountSketch::with_default_rows(n, 4, &mut s);
        cs.update(77, -300.0);
        cs.update(12, 50.0);
        let (i, v) = cs.argmax_estimate();
        assert_eq!(i, 77);
        assert!((v + 300.0).abs() < 1e-9);
        let top = cs.best_m_sparse(1);
        assert_eq!(top.entries[0].0, 77);
    }

    #[test]
    fn linearity_merge_and_subtract() {
        let n: u64 = 1024;
        let mut s = seeds(5);
        let proto = CountSketch::with_default_rows(n, 6, &mut s);
        let mut a = proto.clone();
        let mut b = proto.clone();
        let mut ab = proto.clone();
        let ups_a = [(1u64, 5.0), (2, -3.0), (512, 9.0)];
        let ups_b = [(2u64, 4.0), (700, -8.0)];
        for (i, v) in ups_a {
            a.update(i, v);
            ab.update(i, v);
        }
        for (i, v) in ups_b {
            b.update(i, v);
            ab.update(i, v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.table, ab.table, "merge must equal sketching the concatenation");

        let mut diff = ab.clone();
        diff.subtract(&b);
        assert_eq!(diff.table, a.table, "subtract must invert merge");
    }

    #[test]
    fn sketch_of_sparse_matches_direct_updates() {
        let n: u64 = 256;
        let mut s = seeds(6);
        let mut direct = CountSketch::with_default_rows(n, 4, &mut s);
        let entries = [(10u64, 2.5), (100, -7.25)];
        for (i, v) in entries {
            direct.update(i, v);
        }
        let derived = direct.sketch_of_sparse(&entries);
        assert_eq!(direct.table, derived.table);
    }

    #[test]
    fn space_accounting_scales_with_m_and_rows() {
        let mut s = seeds(7);
        let small = CountSketch::new(1 << 10, 4, 5, &mut s);
        let big = CountSketch::new(1 << 10, 8, 5, &mut s);
        assert_eq!(small.space().counters, (5 * 6 * 4) as u64);
        assert_eq!(big.space().counters, (5 * 6 * 8) as u64);
        assert!(big.bits_used() > small.bits_used());
        assert!(small.space().randomness_bits > 0);
    }

    #[test]
    fn zero_vector_estimates_zero() {
        let mut s = seeds(8);
        let cs = CountSketch::with_default_rows(128, 4, &mut s);
        for i in 0..128u64 {
            assert_eq!(cs.estimate(i), 0.0);
        }
    }
}

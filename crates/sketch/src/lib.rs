//! # lps-sketch
//!
//! Linear sketches used by the samplers of Jowhari–Sağlam–Tardos (PODS 2011):
//!
//! * [`count_sketch`] — the Charikar–Chen–Farach-Colton count-sketch with the
//!   Lemma 1 interface (point estimates, best m-sparse approximation).
//! * [`count_min`] — count-min and count-median baselines for heavy hitters.
//! * [`ams`] — the AMS tug-of-war sketch for `‖·‖₂` estimation, used to test
//!   the tail-error guard of the sampler's recovery stage.
//! * [`pstable`] — Indyk's p-stable sketch for `‖·‖_p` estimation (Lemma 2's
//!   2-approximation `r`).
//! * [`sparse_recovery`] — exact s-sparse recovery with 1-sparse detection
//!   cells and peeling (Lemma 5), used by the L0 sampler, by Theorem 4's
//!   duplicates algorithm and by the universal-relation protocol.
//! * [`linear`] — the [`LinearSketch`] trait every sketch implements (merge /
//!   subtract), which is what makes the recovery-stage algebra and the
//!   communication reductions work.
//! * [`mergeable`] — the [`Mergeable`] trait promoting merge to a
//!   first-class capability with bit-level state digests, the contract the
//!   parallel sharded ingestion engine (`lps-engine`) builds on.
//! * [`persist`] — the [`Persist`] trait and versioned little-endian wire
//!   format (magic + version + structure tag + seed section + counter
//!   section) that lets every `Mergeable` state be checkpointed, shipped
//!   between machines, and merged across OS processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ams;
pub mod compensated;
pub mod count_min;
pub mod count_sketch;
pub mod linear;
pub mod mergeable;
pub mod persist;
pub mod pstable;
pub mod sparse_recovery;

pub use ams::AmsSketch;
pub use compensated::kahan_add;
pub use count_min::{CountMedianSketch, CountMinSketch};
pub use count_sketch::{median, rows_for_dimension, CountSketch, SparseApprox, WIDTH_FACTOR};
pub use linear::LinearSketch;
pub use mergeable::{check_shard_range, Mergeable, StateDigest};
pub use persist::{
    read_header, seed_section, DecodeError, Persist, WireHeader, WireReader, WireWriter,
    WIRE_MAGIC, WIRE_VERSION,
};
pub use pstable::{stable_sample, PStableSketch};
pub use sparse_recovery::{
    fingerprint_term, fingerprint_terms, signed_field, CellState, OneSparseCell, RecoveryOutput,
    SparseRecovery,
};

//! The linear-sketch abstraction.
//!
//! Every streaming structure in the paper maintains `L(x)` for a random
//! linear map `L : R^n → R^m`. Linearity is what makes the recovery stage of
//! the precision sampler work (`L'(z − ẑ) = L'(z) − L'(ẑ)`), what lets the
//! universal-relation protocol sketch `x − y` from two separately-sketched
//! vectors, and what lets Alice hand her memory state to Bob in the
//! augmented-indexing reductions. The [`LinearSketch`] trait captures exactly
//! that contract so the property tests can verify linearity uniformly for
//! every sketch in the crate.

use lps_stream::{SpaceUsage, Update, UpdateStream};

/// A sketch that is a linear function of the underlying frequency vector.
///
/// Implementations must satisfy, for all update sequences `A` and `B`:
/// `sketch(A ++ B) == sketch(A).merged(sketch(B))` and
/// `sketch(A) - sketch(B) == sketch(A ++ negate(B))`, where both sides use
/// the *same* random seeds. The property tests in each module check this.
pub trait LinearSketch: SpaceUsage {
    /// Apply a single real-valued update `x[index] += delta`.
    fn update(&mut self, index: u64, delta: f64);

    /// Apply an integer stream update.
    fn update_int(&mut self, update: Update) {
        self.update(update.index, update.delta as f64);
    }

    /// Apply a batch of integer stream updates.
    ///
    /// The default simply loops; implementors override it with a batched
    /// fast path (coalescing repeated indices, caching per-index hash
    /// evaluations, walking counters in row-major order). Every override
    /// must leave the sketch in a state **identical** to the sequential
    /// loop — the batch-vs-sequential property tests pin this for each
    /// implementor.
    fn process_batch(&mut self, updates: &[Update]) {
        for u in updates {
            self.update_int(*u);
        }
    }

    /// Process an entire update stream through the batched ingestion path.
    fn process(&mut self, stream: &UpdateStream) {
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            self.process_batch(chunk);
        }
    }

    /// Add another sketch of the *same shape and seeds* into this one
    /// (sketch of the concatenated streams).
    fn merge(&mut self, other: &Self);

    /// Subtract another sketch of the same shape and seeds from this one
    /// (sketch of the difference vector).
    fn subtract(&mut self, other: &Self);

    /// Dimension `n` of the underlying vector.
    fn dimension(&self) -> u64;
}

#[cfg(test)]
mod tests {
    // The trait itself has no behaviour to test beyond its provided methods,
    // which are exercised through every implementor's test module.
}

//! Mergeability as a first-class capability.
//!
//! Every structure in this workspace maintains `L(x)` for a *linear* map `L`,
//! so the sketch of a concatenated stream equals the sum of the sketches of
//! its parts: `sketch(A ++ B) == merge(sketch(A), sketch(B))` whenever both
//! sides share the same random seeds. [`LinearSketch`](crate::LinearSketch)
//! already exposes `merge`/`subtract` for the real-valued sketches; this
//! module promotes the merge half into its own object-safe trait so that the
//! parallel sharded ingestion engine (`lps-engine`) can drive *any* linear
//! structure — sketches, samplers, heavy-hitter drivers, duplicate finders —
//! through the same shard/tree-merge pipeline.
//!
//! [`Mergeable::state_digest`] exists so tests can *prove* merge identities
//! at the bit level: for the integer/field-arithmetic structures (sparse
//! recovery, the L0 samplers, count-sketch/count-min/AMS under integer
//! workloads) a sharded ingestion followed by a tree merge must reproduce the
//! sequential state exactly, digest for digest. Floating-point structures
//! whose counters hold non-integer reals (p-stable, the precision/AKO
//! samplers and everything built on them) are linear up to rounding: their
//! merges commute bitwise (IEEE 754 addition is commutative) but reassociate
//! only approximately, which is why the engine restricts its bit-identical
//! guarantee to the exact-arithmetic structures.

/// A structure that can absorb the state of an identically-seeded sibling.
///
/// Implementations must satisfy, for structures built with the same seeds:
///
/// * **stream semantics** — `a.merge_from(&b)` leaves `a` holding the sketch
///   of the concatenation of the streams `a` and `b` ingested;
/// * **commutativity** — `merge(a, b)` and `merge(b, a)` produce the same
///   state (bitwise: counter addition is commutative even for `f64`);
/// * **associativity** — `merge(merge(a, b), c)` equals
///   `merge(a, merge(b, c))` exactly for integer/field counters and up to
///   floating-point rounding otherwise.
///
/// Structures that pre-load mass at construction time (the duplicate finders
/// feed an initial `(i, −1)` pass into their sketches) must document how that
/// initialization interacts with merging — see
/// `lps-duplicates::DuplicateFinder::new_shard`.
pub trait Mergeable {
    /// Add the state of `other` (same shape and seeds) into `self`.
    fn merge_from(&mut self, other: &Self);

    /// A deterministic digest of the full counter state.
    ///
    /// Two structures with equal digests hold (with overwhelming
    /// probability) bit-identical counter state; the merge-law property
    /// tests and the engine's parallel-vs-sequential equivalence tests are
    /// phrased entirely in terms of this digest.
    fn state_digest(&self) -> u64;
}

/// Validate the key range handed to a `restrict_domain` shard constructor:
/// non-empty and within `[0, dimension)`. One shared check so the dozen
/// implementations across the workspace cannot drift.
#[track_caller]
pub fn check_shard_range(range: &std::ops::Range<u64>, dimension: u64) {
    assert!(
        range.start < range.end && range.end <= dimension,
        "key range {}..{} out of bounds for dimension {}",
        range.start,
        range.end,
        dimension
    );
}

/// An FNV-1a accumulator for building [`Mergeable::state_digest`] values out
/// of heterogeneous counter types.
#[derive(Debug, Clone, Copy)]
pub struct StateDigest {
    hash: u64,
}

impl StateDigest {
    /// A fresh accumulator (FNV-1a offset basis).
    pub fn new() -> Self {
        StateDigest { hash: 0xcbf2_9ce4_8422_2325 }
    }

    /// Fold raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Fold a `u64` into the digest.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Fold an `i64` into the digest.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Fold an `i128` into the digest.
    pub fn write_i128(&mut self, v: i128) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Fold an `f64` into the digest by its IEEE 754 bit pattern, so the
    /// digest distinguishes states that differ only in rounding.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_bytes(&v.to_bits().to_le_bytes())
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl Default for StateDigest {
    fn default() -> Self {
        StateDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_deterministic() {
        let mut a = StateDigest::new();
        a.write_u64(1).write_u64(2);
        let mut b = StateDigest::new();
        b.write_u64(2).write_u64(1);
        let mut c = StateDigest::new();
        c.write_u64(1).write_u64(2);
        assert_ne!(a.finish(), b.finish());
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn digest_distinguishes_float_bit_patterns() {
        let mut zero = StateDigest::new();
        zero.write_f64(0.0);
        let mut negzero = StateDigest::new();
        negzero.write_f64(-0.0);
        assert_ne!(zero.finish(), negzero.finish(), "0.0 and -0.0 differ bitwise");
    }

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(StateDigest::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(StateDigest::default().finish(), StateDigest::new().finish());
    }
}

//! Versioned binary serialization of sketch state — the codec layer that
//! lets linear-sketch shards leave the process.
//!
//! [`crate::Mergeable`] made merging a first-class capability, but a state
//! digest only *proves* two in-process states equal; it cannot ship a state
//! to another machine. [`Persist`] closes that gap with a versioned,
//! length-prefixed, little-endian wire format so shards can be checkpointed
//! to disk, transported, and merged in a different OS process (`lps-engine`'s
//! session `checkpoint` / builder `resume` / `merge_checkpointed` build
//! directly on this trait, wrapping each payload in a plan envelope).
//!
//! ## Wire format (version 2)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"LPSK"
//! 4       2     format version (u16 LE) — currently 2
//! 6       2     structure tag  (u16 LE) — see the `tags` module
//! 8       8     seed-section length  S  (u64 LE)
//! 16      S     seed section     (shape parameters + all random seed material)
//! 16+S    8     counter-section length C (u64 LE)
//! 24+S    C     counter section  (the mutable linear-sketch counters)
//! ```
//!
//! The split into a **seed section** and a **counter section** is what makes
//! cross-process merging safe and cheap to validate: two encoded states are
//! merge-compatible exactly when their headers and seed sections are
//! byte-identical (same structure, same shape, same random functions), which
//! a merger can check without decoding either buffer. Identically-seeded
//! shards — the only states the linear-sketch merge identity
//! `sketch(A ++ B) = merge(sketch(A), sketch(B))` applies to — always
//! serialize to identical seed sections.
//!
//! Nested structures compose *within* the two sections: a sampler writes its
//! children's seed material into its own seed section and their counters into
//! its own counter section (no nested headers), so the top-level seed section
//! always covers the complete random state and the compatibility check stays
//! a single `memcmp`.
//!
//! ## Version policy
//!
//! The format version is bumped whenever the byte layout of any structure
//! changes; decoders accept exactly the versions they know
//! ([`WIRE_VERSION`]) and reject everything else with
//! [`DecodeError::UnsupportedVersion`] — no silent best-effort decoding of
//! foreign layouts. Structure tags are append-only: a tag, once assigned, is
//! never reused for a different structure.
//!
//! Version history: **1** — initial layout; **2** — the float-accumulator
//! sketches (count-sketch, AMS, p-stable) append their Kahan compensation
//! vector to the counter section, so a restored state resumes summation with
//! bit-identical rounding.
//!
//! Decoding is total: any byte slice either decodes to a valid structure or
//! returns a typed [`DecodeError`]. Malformed input never panics and never
//! triggers large speculative allocations (claimed element counts are checked
//! against the bytes actually present before any buffer is allocated).

use lps_hash::{FourWiseHash, Fp, KWiseHash, PairwiseHash, TabulationHash, MERSENNE_P};

/// The 4-byte magic prefix of every encoded state.
pub const WIRE_MAGIC: [u8; 4] = *b"LPSK";

/// The current (and only) wire-format version.
pub const WIRE_VERSION: u16 = 2;

/// Size of the fixed header preceding the seed section: magic, version,
/// structure tag, seed-section length.
const HEADER_BYTES: usize = 4 + 2 + 2 + 8;

/// Structure tags identifying what an encoded buffer contains.
///
/// Tags are part of the wire format: append-only, never reused. The blocks
/// group by crate (hashing, sketch, core samplers, heavy hitters,
/// duplicates); [`tags::REPEATED_BASE`] is OR-ed with the inner sampler's tag
/// for the generic repetition wrapper.
pub mod tags {
    /// `lps_hash::KWiseHash`.
    pub const KWISE_HASH: u16 = 0x0001;
    /// `lps_hash::PairwiseHash`.
    pub const PAIRWISE_HASH: u16 = 0x0002;
    /// `lps_hash::FourWiseHash`.
    pub const FOURWISE_HASH: u16 = 0x0003;
    /// `lps_hash::TabulationHash`.
    pub const TABULATION_HASH: u16 = 0x0004;
    /// [`crate::OneSparseCell`].
    pub const ONE_SPARSE_CELL: u16 = 0x0010;
    /// [`crate::SparseRecovery`].
    pub const SPARSE_RECOVERY: u16 = 0x0011;
    /// [`crate::CountSketch`].
    pub const COUNT_SKETCH: u16 = 0x0012;
    /// [`crate::CountMinSketch`].
    pub const COUNT_MIN: u16 = 0x0013;
    /// [`crate::CountMedianSketch`].
    pub const COUNT_MEDIAN: u16 = 0x0014;
    /// [`crate::AmsSketch`].
    pub const AMS: u16 = 0x0015;
    /// [`crate::PStableSketch`].
    pub const PSTABLE: u16 = 0x0016;
    /// `lps_core::L0Sampler`.
    pub const L0_SAMPLER: u16 = 0x0020;
    /// `lps_core::FisL0Sampler`.
    pub const FIS_L0_SAMPLER: u16 = 0x0021;
    /// `lps_core::PrecisionLpSampler`.
    pub const PRECISION_SAMPLER: u16 = 0x0022;
    /// `lps_core::AkoSampler`.
    pub const AKO_SAMPLER: u16 = 0x0023;
    /// `lps_core::ExactSampler`.
    pub const EXACT_SAMPLER: u16 = 0x0024;
    /// `lps_core::RepeatedSampler<S>` encodes as `REPEATED_BASE | S::TAG`.
    pub const REPEATED_BASE: u16 = 0x4000;
    /// `lps_registry::LazySketch<T>` encodes as `LAZY_BASE | T::TAG`.
    pub const LAZY_BASE: u16 = 0x8000;
    /// `lps_heavy::CountSketchHeavyHitters`.
    pub const CS_HEAVY_HITTERS: u16 = 0x0030;
    /// `lps_heavy::CountMinHeavyHitters`.
    pub const CM_HEAVY_HITTERS: u16 = 0x0031;
    /// `lps_duplicates::PositiveCoordinateFinder`.
    pub const POSITIVE_FINDER: u16 = 0x0040;
    /// `lps_duplicates::DuplicateFinder` (Theorem 3).
    pub const DUPLICATE_FINDER: u16 = 0x0041;
    /// `lps_duplicates::ShortStreamDuplicateFinder` (Theorem 4).
    pub const SHORT_STREAM_FINDER: u16 = 0x0042;
}

/// Why a buffer failed to decode. Every malformed input maps to one of these
/// variants; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the bytes the format requires.
    Truncated {
        /// Bytes the decoder needed at the failure point.
        expected: usize,
        /// Bytes actually available there.
        available: usize,
    },
    /// The buffer does not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The first four bytes found (zero-padded if the buffer is shorter).
        found: [u8; 4],
    },
    /// The format version is not one this decoder supports.
    UnsupportedVersion {
        /// The version stamped in the buffer.
        found: u16,
    },
    /// The buffer holds a different structure than the one requested.
    WrongStructure {
        /// The tag the caller's type expects.
        expected: u16,
        /// The tag stamped in the buffer.
        found: u16,
    },
    /// Bytes remain after the structure was fully decoded (or the declared
    /// section lengths disagree with the buffer length).
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// Two buffers offered for merging carry different seed sections (or
    /// headers), so they do not sketch with the same random linear map.
    SeedMismatch {
        /// Index of the offending buffer in the caller's slice.
        shard: usize,
    },
    /// An engine checkpoint was produced under a different shard plan than
    /// the one the caller is resuming with — a different partitioning
    /// strategy (e.g. a key-range checkpoint offered to a round-robin
    /// resume) or a different tolerance marker: the per-shard states are
    /// only meaningful under the plan that produced them.
    PlanMismatch {
        /// Strategy or tolerance name the resuming plan expects.
        expected: &'static str,
        /// Strategy or tolerance name stamped in the checkpoint envelope.
        found: &'static str,
    },
    /// A field holds a value the structure's invariants forbid.
    Corrupt {
        /// Which invariant was violated.
        context: &'static str,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { expected, available } => {
                write!(f, "truncated buffer: needed {expected} bytes, found {available}")
            }
            DecodeError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {WIRE_MAGIC:?})")
            }
            DecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire format version {found} (supported: {WIRE_VERSION})")
            }
            DecodeError::WrongStructure { expected, found } => {
                write!(f, "wrong structure tag {found:#06x} (expected {expected:#06x})")
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the encoded structure")
            }
            DecodeError::SeedMismatch { shard } => {
                write!(f, "shard {shard} was built with different seeds or shape")
            }
            DecodeError::PlanMismatch { expected, found } => {
                write!(f, "checkpoint was taken under shard plan {found} (expected {expected})")
            }
            DecodeError::Corrupt { context } => write!(f, "corrupt field: {context}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian writer over a byte buffer; the encoding half of the wire
/// primitives.
#[derive(Debug)]
pub struct WireWriter<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> WireWriter<'a> {
    /// Wrap a buffer; written bytes are appended.
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        WireWriter { buf }
    }

    /// Append a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn write_len(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Append an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i128` (little-endian two's complement).
    pub fn write_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` by its IEEE 754 bit pattern, so round-trips are exact.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Append a field element as its canonical residue.
    pub fn write_fp(&mut self, v: Fp) {
        self.write_u64(v.value());
    }

    /// Append raw bytes verbatim — for embedding an already-encoded section
    /// (e.g. a captured seed section) without re-serializing it.
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian cursor over a byte slice; the decoding half of the wire
/// primitives. Every read is bounds-checked and returns
/// [`DecodeError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap a byte slice, starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { expected: n, available: self.remaining() });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn read_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("length checked")))
    }

    /// Read a `u64`.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Read an `i64`.
    pub fn read_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Read an `i128`.
    pub fn read_i128(&mut self) -> Result<i128, DecodeError> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().expect("length checked")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Read a finite `f64`, rejecting NaN / infinities.
    pub fn read_finite_f64(&mut self, context: &'static str) -> Result<f64, DecodeError> {
        let v = self.read_f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(DecodeError::Corrupt { context })
        }
    }

    /// Read a canonical field element, rejecting unreduced residues.
    pub fn read_fp(&mut self) -> Result<Fp, DecodeError> {
        let v = self.read_u64()?;
        if v < MERSENNE_P {
            Ok(Fp::from_reduced(v))
        } else {
            Err(DecodeError::Corrupt { context: "field element not a canonical residue" })
        }
    }

    /// Read an element count previously written with
    /// [`WireWriter::write_len`], verifying that `count × elem_bytes` does
    /// not exceed the bytes still present — so a corrupted count can never
    /// trigger a large speculative allocation.
    pub fn read_count(&mut self, elem_bytes: usize) -> Result<usize, DecodeError> {
        let raw = self.read_u64()?;
        let count = usize::try_from(raw)
            .map_err(|_| DecodeError::Corrupt { context: "element count exceeds usize" })?;
        self.claim(count, elem_bytes)?;
        Ok(count)
    }

    /// Verify that `count` elements of `elem_bytes` each are present in the
    /// unconsumed bytes (without consuming them). Call before allocating for
    /// counts that are implied by shape fields rather than read directly.
    pub fn claim(&self, count: usize, elem_bytes: usize) -> Result<(), DecodeError> {
        let needed = count
            .checked_mul(elem_bytes)
            .ok_or(DecodeError::Corrupt { context: "element count overflows" })?;
        if needed > self.remaining() {
            Err(DecodeError::Truncated { expected: needed, available: self.remaining() })
        } else {
            Ok(())
        }
    }

    /// Read `count` `f64` values (bounds-checked before allocation).
    pub fn read_f64s(&mut self, count: usize) -> Result<Vec<f64>, DecodeError> {
        self.claim(count, 8)?;
        (0..count).map(|_| self.read_f64()).collect()
    }

    /// Read `count` `i64` values (bounds-checked before allocation).
    pub fn read_i64s(&mut self, count: usize) -> Result<Vec<i64>, DecodeError> {
        self.claim(count, 8)?;
        (0..count).map(|_| self.read_i64()).collect()
    }

    /// Consume and return every unconsumed byte. The inverse of
    /// [`WireWriter::write_raw`] for a trailing raw field: callers that store
    /// an opaque blob (e.g. a captured seed section) place it last in the
    /// section and capture it with this.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        out
    }
}

/// The parsed fixed-size prefix of an encoded state, plus the byte ranges of
/// its two sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHeader {
    /// The stamped format version (always a supported one after parsing).
    pub version: u16,
    /// The stamped structure tag.
    pub tag: u16,
    /// Byte range of the seed section within the original buffer.
    pub seed_range: std::ops::Range<usize>,
    /// Byte range of the counter section within the original buffer.
    pub counter_range: std::ops::Range<usize>,
}

/// Parse and validate the header and section framing of an encoded buffer:
/// magic, version, tag, and that the two declared section lengths tile the
/// buffer exactly.
pub fn read_header(bytes: &[u8]) -> Result<WireHeader, DecodeError> {
    if bytes.len() < WIRE_MAGIC.len() {
        return Err(DecodeError::Truncated { expected: WIRE_MAGIC.len(), available: bytes.len() });
    }
    if bytes[..4] != WIRE_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        return Err(DecodeError::BadMagic { found });
    }
    let mut r = WireReader::new(&bytes[4..]);
    let version = r.read_u16()?;
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    let tag = r.read_u16()?;
    let seed_len = r.read_count(1)?;
    let seed_range = HEADER_BYTES..HEADER_BYTES + seed_len;
    let mut r = WireReader::new(&bytes[seed_range.end..]);
    let counter_len = r.read_count(1)?;
    let counter_start = seed_range.end + 8;
    let counter_range = counter_start..counter_start + counter_len;
    if counter_range.end != bytes.len() {
        return Err(DecodeError::TrailingBytes { extra: bytes.len() - counter_range.end });
    }
    Ok(WireHeader { version, tag, seed_range, counter_range })
}

/// The seed section of an encoded buffer (shape + all random seed material).
/// Two encoded states are merge-compatible iff their tags match and their
/// seed sections are byte-identical.
pub fn seed_section(bytes: &[u8]) -> Result<&[u8], DecodeError> {
    let header = read_header(bytes)?;
    Ok(&bytes[header.seed_range])
}

/// A structure whose complete state — shape, random seed material, and
/// counters — round-trips through the versioned wire format.
///
/// Implementors split their state across the two wire sections:
///
/// * [`Persist::encode_seeds`] writes everything fixed at construction time
///   (dimensions, table shapes, hash coefficients, stored seed words) — the
///   part that must be byte-identical between merge-compatible states;
/// * [`Persist::encode_counters`] writes the mutable linear-sketch counters —
///   the part a stream mutates and a merge adds.
///
/// Nested structures compose by calling their children's section encoders
/// inside their own (same order in both halves); only the outermost
/// [`Persist::encode_state`] emits a header.
///
/// The round-trip law, pinned by the workspace's property tests: for any
/// reachable state `s`, `decode_state(encode_to_vec(s))` succeeds and has the
/// same [`crate::Mergeable::state_digest`] — bit-identical counters — and the
/// same behaviour under further updates, merges, and queries.
pub trait Persist: Sized {
    /// The structure tag stamped into the header (see [`tags`]).
    const TAG: u16;

    /// Write the construction-time state (shape + seed material).
    fn encode_seeds(&self, w: &mut WireWriter<'_>);

    /// Write the mutable counter state.
    fn encode_counters(&self, w: &mut WireWriter<'_>);

    /// Rebuild a structure from the two sections. Implementations must read
    /// exactly the bytes their encoders wrote (framing is validated by
    /// [`Persist::decode_state`]) and reject invariant-violating values with
    /// typed errors instead of panicking.
    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError>;

    /// Append the complete encoded state (header + both sections) to `out`.
    fn encode_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&Self::TAG.to_le_bytes());
        let mut seeds = Vec::new();
        self.encode_seeds(&mut WireWriter::new(&mut seeds));
        out.extend_from_slice(&(seeds.len() as u64).to_le_bytes());
        out.extend_from_slice(&seeds);
        let mut counters = Vec::new();
        self.encode_counters(&mut WireWriter::new(&mut counters));
        out.extend_from_slice(&(counters.len() as u64).to_le_bytes());
        out.extend_from_slice(&counters);
    }

    /// The complete encoded state as a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_state(&mut out);
        out
    }

    /// Decode a structure from a buffer produced by
    /// [`Persist::encode_state`], validating magic, version, tag, section
    /// framing, and that both sections are consumed exactly.
    fn decode_state(bytes: &[u8]) -> Result<Self, DecodeError> {
        let header = read_header(bytes)?;
        if header.tag != Self::TAG {
            return Err(DecodeError::WrongStructure { expected: Self::TAG, found: header.tag });
        }
        let mut seeds = WireReader::new(&bytes[header.seed_range]);
        let mut counters = WireReader::new(&bytes[header.counter_range]);
        let decoded = Self::decode_parts(&mut seeds, &mut counters)?;
        if !seeds.is_empty() {
            return Err(DecodeError::TrailingBytes { extra: seeds.remaining() });
        }
        if !counters.is_empty() {
            return Err(DecodeError::TrailingBytes { extra: counters.remaining() });
        }
        Ok(decoded)
    }
}

// ---------------------------------------------------------------------------
// Persist for the lps-hash seed carriers. Hash functions are pure seed
// material: their counter sections are empty.
// ---------------------------------------------------------------------------

impl Persist for KWiseHash {
    const TAG: u16 = tags::KWISE_HASH;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_len(self.coefficients().len());
        for &c in self.coefficients() {
            w.write_fp(c);
        }
    }

    fn encode_counters(&self, _w: &mut WireWriter<'_>) {}

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        _counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let k = seeds.read_count(8)?;
        if k == 0 {
            return Err(DecodeError::Corrupt { context: "k-wise hash needs k >= 1" });
        }
        let coeffs = (0..k).map(|_| seeds.read_fp()).collect::<Result<Vec<_>, _>>()?;
        Ok(KWiseHash::from_coefficients(coeffs))
    }
}

impl Persist for PairwiseHash {
    const TAG: u16 = tags::PAIRWISE_HASH;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        self.kwise().encode_seeds(w);
    }

    fn encode_counters(&self, _w: &mut WireWriter<'_>) {}

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let inner = KWiseHash::decode_parts(seeds, counters)?;
        if inner.independence() != 2 {
            return Err(DecodeError::Corrupt { context: "pairwise hash needs exactly k = 2" });
        }
        Ok(PairwiseHash::from_kwise(inner))
    }
}

impl Persist for FourWiseHash {
    const TAG: u16 = tags::FOURWISE_HASH;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        self.kwise().encode_seeds(w);
    }

    fn encode_counters(&self, _w: &mut WireWriter<'_>) {}

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let inner = KWiseHash::decode_parts(seeds, counters)?;
        if inner.independence() != 4 {
            return Err(DecodeError::Corrupt { context: "4-wise hash needs exactly k = 4" });
        }
        Ok(FourWiseHash::from_kwise(inner))
    }
}

impl Persist for TabulationHash {
    const TAG: u16 = tags::TABULATION_HASH;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        for table in self.tables() {
            for &entry in table {
                w.write_u64(entry);
            }
        }
    }

    fn encode_counters(&self, _w: &mut WireWriter<'_>) {}

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        _counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        seeds.claim(8 * 256, 8)?;
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = seeds.read_u64()?;
            }
        }
        Ok(TabulationHash::from_tables(tables))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_hash::SeedSequence;

    #[test]
    fn wire_primitives_roundtrip() {
        let mut buf = Vec::new();
        let mut w = WireWriter::new(&mut buf);
        w.write_u8(7);
        w.write_u16(300);
        w.write_u64(u64::MAX - 1);
        w.write_i64(-42);
        w.write_i128(-(1i128 << 100));
        w.write_f64(-0.0);
        w.write_fp(Fp::new(123456789));
        let mut r = WireReader::new(&buf);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u16().unwrap(), 300);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_i64().unwrap(), -42);
        assert_eq!(r.read_i128().unwrap(), -(1i128 << 100));
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.read_fp().unwrap(), Fp::new(123456789));
        assert!(r.is_empty());
    }

    #[test]
    fn reader_reports_truncation() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(r.read_u64(), Err(DecodeError::Truncated { expected: 8, available: 3 }));
    }

    #[test]
    fn reader_rejects_unreduced_field_elements() {
        let mut buf = Vec::new();
        WireWriter::new(&mut buf).write_u64(MERSENNE_P);
        assert!(matches!(WireReader::new(&buf).read_fp(), Err(DecodeError::Corrupt { .. })));
    }

    #[test]
    fn read_count_rejects_oversized_claims() {
        let mut buf = Vec::new();
        WireWriter::new(&mut buf).write_u64(1 << 40); // claims 2^40 elements
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.read_count(8), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn kwise_hash_roundtrips_and_agrees_pointwise() {
        let mut s = SeedSequence::new(11);
        let h = KWiseHash::new(6, &mut s);
        let decoded = KWiseHash::decode_state(&h.encode_to_vec()).unwrap();
        for key in 0..200u64 {
            assert_eq!(h.hash(key), decoded.hash(key));
        }
    }

    #[test]
    fn tabulation_hash_roundtrips() {
        let mut s = SeedSequence::new(12);
        let h = TabulationHash::new(&mut s);
        let decoded = TabulationHash::decode_state(&h.encode_to_vec()).unwrap();
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(h.hash(key), decoded.hash(key));
        }
    }

    #[test]
    fn header_errors_are_typed() {
        let mut s = SeedSequence::new(13);
        let h = PairwiseHash::new(&mut s);
        let good = h.encode_to_vec();

        // every strict prefix fails (never panics, never succeeds)
        for cut in 0..good.len() {
            assert!(PairwiseHash::decode_state(&good[..cut]).is_err(), "prefix {cut} accepted");
        }
        // appended garbage fails
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(
            PairwiseHash::decode_state(&long),
            Err(DecodeError::TrailingBytes { .. })
        ));
        // bad magic
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(PairwiseHash::decode_state(&bad), Err(DecodeError::BadMagic { .. })));
        // unsupported version
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            PairwiseHash::decode_state(&bad),
            Err(DecodeError::UnsupportedVersion { found: 99 })
        ));
        // wrong structure tag
        assert!(matches!(
            FourWiseHash::decode_state(&good),
            Err(DecodeError::WrongStructure {
                expected: tags::FOURWISE_HASH,
                found: tags::PAIRWISE_HASH
            })
        ));
    }

    #[test]
    fn seed_section_is_stable_across_clones() {
        let mut s = SeedSequence::new(14);
        let h = FourWiseHash::new(&mut s);
        let a = h.encode_to_vec();
        let b = h.clone().encode_to_vec();
        assert_eq!(seed_section(&a).unwrap(), seed_section(&b).unwrap());
    }
}

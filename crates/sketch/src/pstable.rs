//! Indyk's p-stable sketch for Lp norm estimation, `p ∈ (0, 2]`.
//!
//! Lemma 2 of the paper (quoting Kane–Nelson–Woodruff) needs a streaming
//! algorithm based on a random linear map `L : R^n → R^l`, `l = O(log n)`,
//! that outputs `r` with `‖x‖_p ≤ r ≤ 2‖x‖_p` with high probability. The
//! classic construction is Indyk's p-stable sketch: every counter is
//! `y_j = Σ_i c_{ij}·x_i` with i.i.d. p-stable coefficients `c_{ij}`, so
//! `y_j` is itself p-stable with scale `‖x‖_p`, and `median_j |y_j|` divided
//! by the median of the absolute standard p-stable distribution estimates the
//! norm.
//!
//! The coefficients are generated pseudorandomly from per-row hash functions
//! (Chambers–Mallows–Stuck transform of two uniforms derived from the hashed
//! index), so the sketch stores only `O(l)` counters plus hash seeds — the
//! space the paper charges. The normalising constant `median|S(p)|` is
//! calibrated once per instance by a deterministic Monte Carlo pass.

use lps_hash::{KWiseHash, SeedSequence};
use lps_stream::{counter_bits_for, SpaceBreakdown, SpaceUsage};

use crate::compensated::kahan_add;
use crate::count_sketch::median;
use crate::linear::LinearSketch;
use crate::mergeable::{Mergeable, StateDigest};
use crate::persist::{tags, DecodeError, Persist, WireReader, WireWriter};

/// Number of Monte Carlo samples used to calibrate `median |S(p)|`.
const CALIBRATION_SAMPLES: usize = 50_001;

/// A p-stable Lp-norm sketch.
#[derive(Debug, Clone)]
pub struct PStableSketch {
    dimension: u64,
    p: f64,
    rows: usize,
    counters: Vec<f64>,
    /// Kahan compensation terms, parallel to `counters` (see
    /// [`crate::compensated`]). Unlike the signed-unit sketches these
    /// counters sum arbitrary reals, so the compensation genuinely tightens
    /// the sequential-vs-sharded drift bound.
    comp: Vec<f64>,
    /// One hash per row; the hashed index supplies the uniforms that the CMS
    /// transform turns into that row's p-stable coefficient for the index.
    row_hashes: Vec<KWiseHash>,
    /// median of |S(p)| for the standard p-stable distribution.
    median_abs: f64,
}

impl PStableSketch {
    /// Create a sketch with the given number of rows (counters).
    pub fn new(dimension: u64, p: f64, rows: usize, seeds: &mut SeedSequence) -> Self {
        assert!(dimension > 0);
        assert!(p > 0.0 && p <= 2.0, "p-stable sketches require p in (0, 2]");
        assert!(rows >= 1);
        // Use an independence high enough that the per-coefficient uniforms
        // behave independently across the coordinates that matter; full
        // independence is emulated by a wide polynomial hash.
        let row_hashes = (0..rows).map(|_| KWiseHash::new(8, seeds)).collect();
        let median_abs = calibrate_median_abs(p);
        PStableSketch {
            dimension,
            p,
            rows,
            counters: vec![0.0; rows],
            comp: vec![0.0; rows],
            row_hashes,
            median_abs,
        }
    }

    /// Default shape: `O(log n)` rows, enough for a 2-approximation w.h.p.
    pub fn with_default_rows(dimension: u64, p: f64, seeds: &mut SeedSequence) -> Self {
        let rows = (((dimension.max(4) as f64).log2() * 3.0).ceil() as usize).max(21) | 1;
        PStableSketch::new(dimension, p, rows, seeds)
    }

    /// The norm exponent p.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of rows (counters).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The p-stable coefficient `c_{ij}` for row `j` and index `i`.
    fn coefficient(&self, row: usize, index: u64) -> f64 {
        let h = self.row_hashes[row].hash(index);
        // split the 61-bit hash into two uniforms
        let u1 = ((h & 0x3FFF_FFFF) as f64 + 0.5) / (1u64 << 30) as f64;
        let u2 = (((h >> 30) & 0x7FFF_FFFF) as f64 + 0.5) / (1u64 << 31) as f64;
        stable_sample(self.p, u1, u2)
    }

    /// The median-based estimate of `‖x‖_p`.
    pub fn estimate(&self) -> f64 {
        let mut mags: Vec<f64> = self.counters.iter().map(|c| c.abs()).collect();
        median(&mut mags) / self.median_abs
    }

    /// A value `r` with `‖x‖_p ≤ r ≤ 2‖x‖_p` with high probability (Lemma 2
    /// interface): the median estimate inflated by a factor 1.4, so that a
    /// (1 ± 0.3)-accurate estimate lands in the required window.
    pub fn upper_estimate(&self) -> f64 {
        self.estimate() * 1.4
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone. Counters are dense `f64` sums over *all* coordinates, so a
    /// key-range recombination reassociates floating-point additions —
    /// sharding this structure is approximate (estimator-level drift, not
    /// bit identity); the engine requires an explicit approximate-tolerance
    /// plan to drive it.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        crate::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge of a sibling shard with a disjoint key range;
    /// coincides with [`Mergeable::merge_from`] (rowwise `f64` addition,
    /// commutative bitwise, associative only up to rounding — see the
    /// `merge_from` drift bound).
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

impl LinearSketch for PStableSketch {
    fn update(&mut self, index: u64, delta: f64) {
        debug_assert!(index < self.dimension);
        for row in 0..self.rows {
            let v = self.coefficient(row, index) * delta;
            kahan_add(&mut self.counters[row], &mut self.comp[row], v);
        }
    }

    /// Batched fast path: cache the p-stable coefficient vector per distinct
    /// index (a pure function of the index whose CMS transform — `sin`,
    /// `cos`, `powf`, `ln` — dominates the update cost), but apply the
    /// updates in stream order so the floating-point accumulation in each
    /// counter matches the sequential path bit for bit. Unlike the integer
    /// sketches, the coefficients are arbitrary reals, so coalescing deltas
    /// would change rounding; caching does not.
    fn process_batch(&mut self, updates: &[lps_stream::Update]) {
        let mut cache: std::collections::HashMap<u64, Vec<f64>> = std::collections::HashMap::new();
        for u in updates {
            debug_assert!(u.index < self.dimension);
            let rows = self.rows;
            let coeffs = match cache.entry(u.index) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let coeffs: Vec<f64> =
                        (0..rows).map(|row| self.coefficient(row, u.index)).collect();
                    e.insert(coeffs)
                }
            };
            let delta = u.delta as f64;
            for ((counter, comp), c) in
                self.counters.iter_mut().zip(self.comp.iter_mut()).zip(coeffs.iter())
            {
                kahan_add(counter, comp, c * delta);
            }
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.rows, other.rows);
        // Plain elementwise addition of both vectors keeps merge
        // bitwise-commutative, as Mergeable requires.
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.comp.iter_mut().zip(other.comp.iter()) {
            *a += b;
        }
    }

    fn subtract(&mut self, other: &Self) {
        assert_eq!(self.rows, other.rows);
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a -= b;
        }
        for (a, b) in self.comp.iter_mut().zip(other.comp.iter()) {
            *a -= b;
        }
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }
}

impl Mergeable for PStableSketch {
    fn merge_from(&mut self, other: &Self) {
        LinearSketch::merge(self, other);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in &self.counters {
            d.write_f64(v);
        }
        for &v in &self.comp {
            d.write_f64(v);
        }
        d.finish()
    }
}

impl Persist for PStableSketch {
    const TAG: u16 = tags::PSTABLE;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_f64(self.p);
        w.write_len(self.rows);
        for h in &self.row_hashes {
            h.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for &v in &self.counters {
            w.write_f64(v);
        }
        for &v in &self.comp {
            w.write_f64(v);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let p = seeds.read_finite_f64("p-stable exponent must be finite")?;
        if dimension == 0 || !(p > 0.0 && p <= 2.0) {
            return Err(DecodeError::Corrupt { context: "p-stable sketch needs p in (0, 2]" });
        }
        let rows = seeds.read_count(1)?;
        if rows == 0 {
            return Err(DecodeError::Corrupt { context: "p-stable sketch needs rows >= 1" });
        }
        let row_hashes = (0..rows)
            .map(|_| KWiseHash::decode_parts(seeds, counters))
            .collect::<Result<Vec<_>, _>>()?;
        let values = counters.read_f64s(rows)?;
        let comp = counters.read_f64s(rows)?;
        // The normalising constant is derived deterministically from p, not
        // stored: recompute it exactly as the constructor does.
        let median_abs = calibrate_median_abs(p);
        Ok(PStableSketch { dimension, p, rows, counters: values, comp, row_hashes, median_abs })
    }
}

impl SpaceUsage for PStableSketch {
    fn space(&self) -> SpaceBreakdown {
        let counters = self.rows as u64;
        let counter_bits = counter_bits_for(self.dimension, self.dimension);
        let randomness = self.row_hashes.iter().map(|h| h.random_bits()).sum();
        SpaceBreakdown::new(counters, counter_bits, randomness)
    }
}

/// Sample a standard symmetric p-stable random variable from two uniforms in
/// (0, 1) via the Chambers–Mallows–Stuck transform. For `p = 2` the result is
/// a Gaussian scaled so that the stability parameter matches `‖·‖₂`
/// (`N(0, 2)` under the CMS convention reduced to `N(0,1)·√2`; the
/// calibration constant absorbs scaling, so only consistency matters).
pub fn stable_sample(p: f64, u1: f64, u2: f64) -> f64 {
    debug_assert!(p > 0.0 && p <= 2.0);
    let theta = std::f64::consts::PI * (u1 - 0.5); // Uniform(-pi/2, pi/2)
    let w = -(u2.max(1e-300)).ln(); // Exp(1)
    if (p - 1.0).abs() < 1e-9 {
        // Cauchy
        return theta.tan();
    }
    let a = (p * theta).sin() / theta.cos().powf(1.0 / p);
    let b = ((theta * (1.0 - p)).cos() / w).powf((1.0 - p) / p);
    a * b
}

/// Deterministically estimate the median of |S(p)| for the standard p-stable
/// distribution, used as the normalising constant of the median estimator.
fn calibrate_median_abs(p: f64) -> f64 {
    if (p - 1.0).abs() < 1e-9 {
        return 1.0; // median |Cauchy| = tan(pi/4) = 1
    }
    let mut seq = SeedSequence::new(0xCA11_B0B0 ^ (p.to_bits()));
    let mut mags: Vec<f64> = Vec::with_capacity(CALIBRATION_SAMPLES);
    for _ in 0..CALIBRATION_SAMPLES {
        let u1 = (seq.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = ((seq.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        mags.push(stable_sample(p, u1, u2).abs());
    }
    median(&mut mags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::TruthVector;

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn cauchy_median_is_one() {
        assert!((calibrate_median_abs(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_median_close_to_known_value() {
        // For the CMS convention at p=2 the output is sqrt(2)·N(0,1), whose
        // absolute median is sqrt(2)·0.67449 ≈ 0.9539.
        let m = calibrate_median_abs(2.0);
        assert!((m - 0.9539).abs() < 0.02, "calibrated median {m}");
    }

    #[test]
    fn stable_sample_p1_is_tan_theta() {
        let v = stable_sample(1.0, 0.75, 0.3);
        assert!((v - (std::f64::consts::PI * 0.25).tan()).abs() < 1e-12);
    }

    fn norm_estimate_test(p: f64, seed: u64) {
        let n: u64 = 4096;
        let mut s = seeds(seed);
        let mut sk = PStableSketch::with_default_rows(n, p, &mut s);
        let mut values = vec![0i64; n as usize];
        for i in 0..n {
            let v = ((i * 37 + 11) % 23) as i64 - 11;
            values[i as usize] = v;
            if v != 0 {
                sk.update(i, v as f64);
            }
        }
        let truth = TruthVector::from_values(values).lp_norm(p);
        let est = sk.estimate();
        assert!(
            est > 0.55 * truth && est < 1.8 * truth,
            "p={p}: estimate {est} too far from ‖x‖_p = {truth}"
        );
        let r = sk.upper_estimate();
        assert!(r >= 0.8 * truth && r <= 2.6 * truth, "p={p}: upper estimate {r} vs {truth}");
    }

    #[test]
    fn l1_norm_estimate_within_factor() {
        norm_estimate_test(1.0, 10);
    }

    #[test]
    fn l2_norm_estimate_within_factor() {
        norm_estimate_test(2.0, 11);
    }

    #[test]
    fn fractional_p_norm_estimate_within_factor() {
        norm_estimate_test(0.5, 12);
        norm_estimate_test(1.5, 13);
    }

    #[test]
    fn linearity() {
        let n = 512u64;
        let mut s = seeds(3);
        let proto = PStableSketch::new(n, 1.0, 31, &mut s);
        let mut a = proto.clone();
        let mut b = proto.clone();
        let mut ab = proto.clone();
        for (i, v) in [(3u64, 4.0), (100, -2.0)] {
            a.update(i, v);
            ab.update(i, v);
        }
        for (i, v) in [(100u64, 2.0), (200, 9.0)] {
            b.update(i, v);
            ab.update(i, v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        for (x, y) in merged.counters.iter().zip(ab.counters.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
        let mut diff = ab;
        diff.subtract(&b);
        for (x, y) in diff.counters.iter().zip(a.counters.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_vector_estimates_zero() {
        let mut s = seeds(4);
        let sk = PStableSketch::with_default_rows(128, 1.0, &mut s);
        assert_eq!(sk.estimate(), 0.0);
    }

    #[test]
    fn space_is_logarithmic_in_dimension() {
        let mut s = seeds(5);
        let small = PStableSketch::with_default_rows(1 << 10, 1.0, &mut s);
        let large = PStableSketch::with_default_rows(1 << 20, 1.0, &mut s);
        assert!(large.space().counters <= 2 * small.space().counters + 64);
        assert!(large.bits_used() < 4 * small.bits_used());
    }

    #[test]
    #[should_panic]
    fn p_out_of_range_rejected() {
        let mut s = seeds(6);
        let _ = PStableSketch::new(16, 2.5, 5, &mut s);
    }
}

//! Exact recovery of s-sparse vectors from a small linear sketch (Lemma 5).
//!
//! Lemma 5 of the paper asserts: for `1 ≤ s ≤ n` there is a random linear
//! function `L : R^n → R^k` with `k = O(s)`, generated from `O(k log n)`
//! random bits, and a recovery procedure that outputs `x` exactly whenever
//! `x` is s-sparse and reports `DENSE` with high probability otherwise.
//!
//! We implement the standard construction used in practice (and in the
//! dynamic-graph-sketching literature): a table of *1-sparse detection cells*
//! — each cell keeps the sum of values, the index-weighted sum of values, and
//! a field fingerprint `Σ x_i·r^i` — bucketed by pairwise-independent hashes
//! over several rows, decoded by peeling. A cell containing exactly one
//! non-zero coordinate reveals it (index = weighted sum / sum, verified by
//! the fingerprint); peeling subtracts it everywhere and repeats. If peeling
//! gets stuck before the structure empties, the vector was not sparse enough
//! and we report [`RecoveryOutput::Dense`].
//!
//! False acceptance requires a fingerprint collision in GF(2^61 − 1) and has
//! probability `O(n/2^61)` per cell — the "low probability" regime the paper
//! works in.

use lps_hash::{Fp, PairwiseHash, PowTable, SeedSequence};
use lps_stream::{
    coalesce_updates, counter_bits_for, SpaceBreakdown, SpaceUsage, Update, UpdateStream,
};

use crate::mergeable::{Mergeable, StateDigest};
use crate::persist::{tags, DecodeError, Persist, WireReader, WireWriter};

/// What a single 1-sparse detection cell currently contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// No mass at all (all counters zero).
    Zero,
    /// Exactly one non-zero coordinate `(index, value)` — verified by fingerprint.
    OneSparse(u64, i64),
    /// More than one non-zero coordinate (or a fingerprint mismatch).
    Multiple,
}

/// A 1-sparse detection cell: `(Σ x_i, Σ i·x_i, Σ x_i·r^i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneSparseCell {
    sum: i64,
    index_sum: i128,
    fingerprint: Fp,
}

impl OneSparseCell {
    /// An empty cell.
    pub fn new() -> Self {
        OneSparseCell { sum: 0, index_sum: 0, fingerprint: Fp::ZERO }
    }

    /// Apply `x[index] += delta` to the cell, where `r` is the shared
    /// fingerprint base.
    ///
    /// This recomputes `r^index` by square-and-multiply on every call (~61
    /// field multiplications). The hot paths instead compute the fingerprint
    /// term once per sketch update with [`fingerprint_term`] and fold it into
    /// every touched cell via [`OneSparseCell::apply`]; this method remains
    /// as the simple reference (and is what the throughput benchmarks use to
    /// quantify the speedup of the hoisted path).
    pub fn update(&mut self, index: u64, delta: i64, r: Fp) {
        self.apply(index, delta, signed_field(delta).mul(r.pow(index)));
    }

    /// Apply `x[index] += delta` given the precomputed fingerprint term
    /// `signed_field(delta) · r^index`.
    ///
    /// The term depends only on `(index, delta, r)`, not on the cell, so a
    /// sketch touching many cells per update (rows × levels in the L0
    /// sampler) computes it once and reuses it everywhere.
    #[inline]
    pub fn apply(&mut self, index: u64, delta: i64, term: Fp) {
        self.sum += delta;
        self.index_sum += index as i128 * delta as i128;
        self.fingerprint = self.fingerprint.add(term);
    }

    /// Merge another cell (same fingerprint base).
    pub fn merge(&mut self, other: &OneSparseCell) {
        self.sum += other.sum;
        self.index_sum += other.index_sum;
        self.fingerprint = self.fingerprint.add(other.fingerprint);
    }

    /// Subtract another cell (same fingerprint base).
    pub fn subtract(&mut self, other: &OneSparseCell) {
        self.sum -= other.sum;
        self.index_sum -= other.index_sum;
        self.fingerprint = self.fingerprint.sub(other.fingerprint);
    }

    /// Classify the cell contents, verifying candidates with the fingerprint.
    pub fn state(&self, dimension: u64, r: Fp) -> CellState {
        self.classify(dimension, |idx| r.pow(idx))
    }

    /// Classify the cell using a precomputed [`PowTable`] for the fingerprint
    /// base — the fast path the peeling decoder uses.
    pub fn state_with(&self, dimension: u64, table: &PowTable) -> CellState {
        self.classify(dimension, |idx| table.pow(idx))
    }

    fn classify(&self, dimension: u64, pow: impl Fn(u64) -> Fp) -> CellState {
        if self.sum == 0 && self.index_sum == 0 && self.fingerprint.is_zero() {
            return CellState::Zero;
        }
        if self.sum != 0 && self.index_sum % self.sum as i128 == 0 {
            let idx = self.index_sum / self.sum as i128;
            if idx >= 0 && (idx as u64) < dimension {
                let idx = idx as u64;
                let expected = signed_field(self.sum).mul(pow(idx));
                if expected == self.fingerprint {
                    return CellState::OneSparse(idx, self.sum);
                }
            }
        }
        CellState::Multiple
    }

    /// True if all counters are zero.
    pub fn is_zero(&self) -> bool {
        self.sum == 0 && self.index_sum == 0 && self.fingerprint.is_zero()
    }
}

impl Default for OneSparseCell {
    fn default() -> Self {
        OneSparseCell::new()
    }
}

impl Mergeable for OneSparseCell {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_i64(self.sum).write_i128(self.index_sum).write_u64(self.fingerprint.value());
        d.finish()
    }
}

impl Persist for OneSparseCell {
    const TAG: u16 = tags::ONE_SPARSE_CELL;

    /// A bare cell carries no seed material of its own: the fingerprint base
    /// `r` lives in the enclosing structure (which verifies compatibility at
    /// its own level).
    fn encode_seeds(&self, _w: &mut WireWriter<'_>) {}

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        w.write_i64(self.sum);
        w.write_i128(self.index_sum);
        w.write_fp(self.fingerprint);
    }

    fn decode_parts(
        _seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let sum = counters.read_i64()?;
        let index_sum = counters.read_i128()?;
        let fingerprint = counters.read_fp()?;
        Ok(OneSparseCell { sum, index_sum, fingerprint })
    }
}

/// Map a signed integer into the field (negative values wrap to `P - |v|`).
pub fn signed_field(v: i64) -> Fp {
    if v >= 0 {
        Fp::new(v as u64)
    } else {
        Fp::new(v.unsigned_abs()).neg()
    }
}

/// The fingerprint contribution `signed_field(delta) · r^index` of a single
/// update, with `r^index` served from the precomputed power table — computed
/// once per sketch update and shared by every cell the update touches.
#[inline]
pub fn fingerprint_term(index: u64, delta: i64, table: &PowTable) -> Fp {
    signed_field(delta).mul(table.pow(index))
}

/// Lane-parallel batch form of [`fingerprint_term`]: the fingerprint
/// contributions of every coalesced `(index, delta)` entry, computed by
/// walking the power table [`lps_hash::simd::LANES`] exponents at a time
/// ([`lps_hash::simd::pow_many`]) and folding in the signed deltas
/// element-wise. Bit-identical to calling [`fingerprint_term`] per entry;
/// shared by [`SparseRecovery`] and the FIS-L0 sampler in `lps-core`.
pub fn fingerprint_terms(entries: &[(u64, i64)], table: &PowTable) -> Vec<Fp> {
    let indices: Vec<u64> = entries.iter().map(|&(i, _)| i).collect();
    let mut pows = vec![0u64; entries.len()];
    lps_hash::simd::pow_many(table, &indices, &mut pows);
    let deltas: Vec<u64> = entries.iter().map(|&(_, d)| signed_field(d).value()).collect();
    let mut terms = vec![0u64; entries.len()];
    lps_hash::simd::mul_mod_many(&deltas, &pows, &mut terms);
    terms.into_iter().map(Fp::from_reduced).collect()
}

/// Result of attempting sparse recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutput {
    /// The exact non-zero entries `(index, value)`, sorted by index.
    /// An empty list means the sketched vector is (whp) the zero vector.
    Recovered(Vec<(u64, i64)>),
    /// The vector has (whp) more than `capacity` non-zero coordinates.
    Dense,
}

impl RecoveryOutput {
    /// Convenience: the recovered entries, or `None` for `Dense`.
    pub fn entries(&self) -> Option<&[(u64, i64)]> {
        match self {
            RecoveryOutput::Recovered(e) => Some(e),
            RecoveryOutput::Dense => None,
        }
    }
}

/// An exact s-sparse recovery sketch (Lemma 5): `rows × buckets` 1-sparse
/// cells with pairwise-independent bucket hashes and peeling decoder.
#[derive(Debug, Clone)]
pub struct SparseRecovery {
    dimension: u64,
    capacity: usize,
    rows: usize,
    buckets: usize,
    cells: Vec<OneSparseCell>,
    hashes: Vec<PairwiseHash>,
    fingerprint_base: Fp,
    /// Precomputed powers of the fingerprint base; derived from it (no extra
    /// stored randomness), shared by the update path and the peeling decoder.
    pow: PowTable,
}

impl SparseRecovery {
    /// Create a recovery structure able to recover any vector with at most
    /// `capacity` non-zero coordinates (with high probability the peeling
    /// succeeds; failure is reported as `Dense`, never as a wrong vector,
    /// except for negligible fingerprint collisions).
    pub fn new(dimension: u64, capacity: usize, seeds: &mut SeedSequence) -> Self {
        assert!(dimension > 0);
        let capacity = capacity.max(1);
        // 2·capacity buckets per row and O(log capacity) + constant rows make
        // peeling succeed with high probability; k = rows · buckets = O(s).
        let buckets = (2 * capacity).max(2);
        let rows = (((capacity as f64).log2().ceil() as usize).max(1) + 3).max(4);
        let hashes = (0..rows).map(|_| PairwiseHash::new(seeds)).collect();
        let fingerprint_base = Fp::new(
            SeedSequence::new(seeds.next_u64()).next_u64() % (lps_hash::MERSENNE_P - 2) + 1,
        );
        SparseRecovery {
            dimension,
            capacity,
            rows,
            buckets,
            cells: vec![OneSparseCell::new(); rows * buckets],
            hashes,
            fingerprint_base,
            pow: PowTable::new(fingerprint_base),
        }
    }

    /// The sparsity capacity `s`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Dimension of the underlying vector.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// Apply `x[index] += delta`.
    ///
    /// The fingerprint term `signed_field(delta) · r^index` is computed once
    /// (≤ 15 field multiplications via the power table) and folded into every
    /// row's cell, instead of re-deriving `r^index` per cell.
    pub fn update(&mut self, index: u64, delta: i64) {
        debug_assert!(index < self.dimension);
        if delta == 0 {
            return;
        }
        let term = fingerprint_term(index, delta, &self.pow);
        for j in 0..self.rows {
            let b = self.hashes[j].bucket(index, self.buckets);
            self.cells[j * self.buckets + b].apply(index, delta, term);
        }
    }

    /// The pre-optimization update path: square-and-multiply `r^index` in
    /// every cell, exactly as the seed implementation did. Retained solely so
    /// the throughput benchmarks can report the speedup of the hoisted /
    /// table-driven fast path against a faithful baseline; production callers
    /// should use [`SparseRecovery::update`].
    pub fn update_reference(&mut self, index: u64, delta: i64) {
        debug_assert!(index < self.dimension);
        if delta == 0 {
            return;
        }
        for j in 0..self.rows {
            let b = self.hashes[j].bucket(index, self.buckets);
            self.cells[j * self.buckets + b].update(index, delta, self.fingerprint_base);
        }
    }

    /// Apply a batch of updates: coalesce repeated indices, compute each
    /// fingerprint term once, and walk the cell table in row-major order for
    /// cache locality. The resulting state is identical to applying the
    /// updates one at a time (all cell arithmetic is exact, so coalescing
    /// and reordering across cells commute).
    pub fn process_batch(&mut self, updates: &[Update]) {
        let coalesced = coalesce_updates(updates);
        self.apply_coalesced(&coalesced);
    }

    /// Apply already-coalesced `(index, delta)` entries (deltas non-zero).
    /// Shared with the L0 sampler, which coalesces once and feeds every
    /// level's recovery structure from the same entry list.
    ///
    /// All field math runs through the lane kernels: fingerprint terms via
    /// [`fingerprint_terms`], per-row bucket hashes via the batch polynomial
    /// evaluator. The cell mutations then replay in exactly the original
    /// row-major order, so the resulting state is bit-identical to the
    /// scalar walk.
    pub fn apply_coalesced(&mut self, entries: &[(u64, i64)]) {
        let terms = fingerprint_terms(entries, &self.pow);
        let keys: Vec<u64> = entries.iter().map(|&(i, _)| i).collect();
        let mut hash_scratch = vec![0u64; entries.len()];
        let mut buckets = vec![0usize; entries.len()];
        for j in 0..self.rows {
            let row = &mut self.cells[j * self.buckets..(j + 1) * self.buckets];
            self.hashes[j].kwise().buckets_into(
                &keys,
                self.buckets,
                &mut hash_scratch,
                &mut buckets,
            );
            for ((&(index, delta), &term), &b) in
                entries.iter().zip(terms.iter()).zip(buckets.iter())
            {
                debug_assert!(index < self.dimension);
                row[b].apply(index, delta, term);
            }
        }
    }

    /// Process a whole integer update stream through the batched fast path.
    pub fn process(&mut self, stream: &UpdateStream) {
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            self.process_batch(chunk);
        }
    }

    /// Merge another structure built with the same seeds.
    pub fn merge(&mut self, other: &SparseRecovery) {
        assert_eq!(self.cells.len(), other.cells.len(), "shape mismatch");
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            a.merge(b);
        }
    }

    /// Subtract another structure built with the same seeds (sketch of the
    /// difference vector) — used by the universal-relation protocol.
    pub fn subtract(&mut self, other: &SparseRecovery) {
        assert_eq!(self.cells.len(), other.cells.len(), "shape mismatch");
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            a.subtract(b);
        }
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion.
    ///
    /// The returned structure is an identically-seeded zero-state clone:
    /// sparse-recovery state is hash-compressed (cell shape depends on the
    /// sparsity capacity, not on `n`), and bit-identical disjoint-union
    /// recombination requires evaluating the *same* bucket hashes and
    /// fingerprint powers at global coordinates. What a range-restricted
    /// shard buys is locality — its updates touch only the cells its own
    /// key range hashes to — and a [`SparseRecovery::merge_disjoint`] that
    /// skips the cells the sibling never populated.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        crate::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge: absorb a sibling shard whose ingested key range
    /// was disjoint from ours.
    ///
    /// For a linear sketch the disjoint union coincides with addition, so
    /// the result is bit-identical to [`SparseRecovery::merge`]; disjointness
    /// is exploited by skipping every cell the sibling left untouched
    /// (adding an all-zero cell is a bitwise no-op). Under key-range
    /// partitioning each shard populates only the buckets its own range
    /// hashes to, so most sibling cells are skipped.
    pub fn merge_disjoint(&mut self, other: &SparseRecovery) {
        assert_eq!(self.cells.len(), other.cells.len(), "shape mismatch");
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            if !b.is_zero() {
                a.merge(b);
            }
        }
    }

    /// Attempt to recover the sketched vector by peeling. Does not modify the
    /// structure (works on a scratch copy).
    pub fn recover(&self) -> RecoveryOutput {
        let mut scratch = self.cells.clone();
        let mut recovered: Vec<(u64, i64)> = Vec::new();
        // Upper bound on useful peeling steps: every step removes one distinct
        // coordinate; more steps than cells means something is wrong.
        let max_steps = self.cells.len() + 1;
        for _ in 0..max_steps {
            if scratch.iter().all(|c| c.is_zero()) {
                let mut out = recovered;
                out.sort_unstable_by_key(|&(i, _)| i);
                // A coordinate may be recovered only once; duplicates would
                // indicate an internal inconsistency.
                out.dedup_by_key(|&mut (i, _)| i);
                return RecoveryOutput::Recovered(out);
            }
            // find a decodable cell
            let mut found: Option<(u64, i64)> = None;
            for cell in scratch.iter() {
                if let CellState::OneSparse(i, v) = cell.state_with(self.dimension, &self.pow) {
                    found = Some((i, v));
                    break;
                }
            }
            match found {
                None => return RecoveryOutput::Dense,
                Some((i, v)) => {
                    recovered.push((i, v));
                    // hoist the subtraction term across the rows, exactly as
                    // the update path does
                    let term = fingerprint_term(i, -v, &self.pow);
                    for j in 0..self.rows {
                        let b = self.hashes[j].bucket(i, self.buckets);
                        scratch[j * self.buckets + b].apply(i, -v, term);
                    }
                }
            }
        }
        RecoveryOutput::Dense
    }
}

impl Mergeable for SparseRecovery {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for cell in &self.cells {
            d.write_u64(cell.state_digest());
        }
        d.finish()
    }
}

impl Persist for SparseRecovery {
    const TAG: u16 = tags::SPARSE_RECOVERY;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_len(self.capacity);
        w.write_len(self.rows);
        w.write_len(self.buckets);
        for h in &self.hashes {
            h.encode_seeds(w);
        }
        w.write_fp(self.fingerprint_base);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for cell in &self.cells {
            cell.encode_counters(w);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        if dimension == 0 {
            return Err(DecodeError::Corrupt { context: "sparse recovery dimension must be > 0" });
        }
        let capacity = seeds.read_count(0)?;
        let rows = seeds.read_count(1)?;
        let buckets = seeds.read_count(1)?;
        if capacity == 0 || rows == 0 || buckets == 0 {
            return Err(DecodeError::Corrupt { context: "sparse recovery shape must be non-zero" });
        }
        let hashes = (0..rows)
            .map(|_| PairwiseHash::decode_parts(seeds, counters))
            .collect::<Result<Vec<_>, _>>()?;
        let fingerprint_base = seeds.read_fp()?;
        let cell_count = rows
            .checked_mul(buckets)
            .ok_or(DecodeError::Corrupt { context: "sparse recovery shape overflows" })?;
        counters.claim(cell_count, 8 + 16 + 8)?;
        let cells = (0..cell_count)
            .map(|_| OneSparseCell::decode_parts(seeds, counters))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SparseRecovery {
            dimension,
            capacity,
            rows,
            buckets,
            cells,
            hashes,
            fingerprint_base,
            pow: PowTable::new(fingerprint_base),
        })
    }
}

impl SpaceUsage for SparseRecovery {
    fn space(&self) -> SpaceBreakdown {
        // Each cell stores three counters (sum, index-weighted sum, fingerprint).
        let counters = (self.rows * self.buckets * 3) as u64;
        let counter_bits = counter_bits_for(self.dimension, self.dimension).max(61);
        let randomness: u64 = self.hashes.iter().map(|h| h.random_bits()).sum::<u64>() + 61;
        SpaceBreakdown::new(counters, counter_bits, randomness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{TurnstileModel, Update};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn signed_field_wraps_negatives() {
        assert_eq!(signed_field(5).value(), 5);
        assert_eq!(signed_field(-5), Fp::new(5).neg());
        assert_eq!(signed_field(0), Fp::ZERO);
    }

    #[test]
    fn one_sparse_cell_detects_single_coordinate() {
        let r = Fp::new(123456789);
        let mut cell = OneSparseCell::new();
        assert_eq!(cell.state(1000, r), CellState::Zero);
        cell.update(42, 7, r);
        assert_eq!(cell.state(1000, r), CellState::OneSparse(42, 7));
        cell.update(42, -3, r);
        assert_eq!(cell.state(1000, r), CellState::OneSparse(42, 4));
        cell.update(42, -4, r);
        assert_eq!(cell.state(1000, r), CellState::Zero);
    }

    #[test]
    fn one_sparse_cell_detects_multiple_coordinates() {
        let r = Fp::new(987654321);
        let mut cell = OneSparseCell::new();
        cell.update(1, 1, r);
        cell.update(5, 1, r);
        assert_eq!(cell.state(1000, r), CellState::Multiple);
        // the naive index estimate (1+5)/2 = 3 must be rejected by the fingerprint
        cell.update(7, 1, r);
        assert_eq!(cell.state(1000, r), CellState::Multiple);
    }

    #[test]
    fn one_sparse_cell_negative_value() {
        let r = Fp::new(31337);
        let mut cell = OneSparseCell::new();
        cell.update(9, -6, r);
        assert_eq!(cell.state(100, r), CellState::OneSparse(9, -6));
    }

    #[test]
    fn apply_with_hoisted_term_matches_reference_update() {
        let r = Fp::new(424242);
        let table = lps_hash::PowTable::new(r);
        let mut reference = OneSparseCell::new();
        let mut hoisted = OneSparseCell::new();
        for (i, d) in [(7u64, 5i64), (1000, -3), (7, -5), (123456, 40)] {
            reference.update(i, d, r);
            hoisted.apply(i, d, fingerprint_term(i, d, &table));
            assert_eq!(reference, hoisted);
            assert_eq!(reference.state(1 << 20, r), hoisted.state_with(1 << 20, &table));
        }
    }

    #[test]
    fn batched_updates_match_sequential_state() {
        let mut s = seeds(40);
        let proto = SparseRecovery::new(1 << 12, 8, &mut s);
        let updates: Vec<Update> = vec![
            Update::new(3, 5),
            Update::new(70, -2),
            Update::new(3, 4),
            Update::new(999, 1),
            Update::new(70, 2),
            Update::new(5, 0),
        ];
        let mut sequential = proto.clone();
        for u in &updates {
            sequential.update(u.index, u.delta);
        }
        let mut reference = proto.clone();
        for u in &updates {
            reference.update_reference(u.index, u.delta);
        }
        let mut batched = proto.clone();
        batched.process_batch(&updates);
        assert_eq!(sequential.cells, batched.cells, "batched state diverged");
        assert_eq!(sequential.cells, reference.cells, "hoisted path diverged from reference");
        assert_eq!(sequential.recover(), batched.recover());
    }

    #[test]
    fn recovers_exactly_a_sparse_vector() {
        let mut s = seeds(1);
        let mut rec = SparseRecovery::new(1 << 17, 8, &mut s);
        let entries = [(3u64, 5i64), (70_000, -2), (123, 1), (65_535, 40)];
        for (i, v) in entries {
            rec.update(i, v);
        }
        match rec.recover() {
            RecoveryOutput::Recovered(out) => {
                let mut expected: Vec<(u64, i64)> = entries.to_vec();
                expected.sort_unstable_by_key(|&(i, _)| i);
                assert_eq!(out, expected);
            }
            RecoveryOutput::Dense => panic!("sparse vector reported dense"),
        }
    }

    #[test]
    fn recovers_after_cancellations() {
        let mut s = seeds(2);
        let mut rec = SparseRecovery::new(1024, 4, &mut s);
        // heavy churn that cancels except for two survivors
        for i in 0..200u64 {
            rec.update(i, 3);
            rec.update(i, -3);
        }
        rec.update(11, 9);
        rec.update(77, -1);
        match rec.recover() {
            RecoveryOutput::Recovered(out) => assert_eq!(out, vec![(11, 9), (77, -1)]),
            RecoveryOutput::Dense => panic!("should recover after cancellation"),
        }
    }

    #[test]
    fn zero_vector_recovers_empty() {
        let mut s = seeds(3);
        let rec = SparseRecovery::new(256, 4, &mut s);
        assert_eq!(rec.recover(), RecoveryOutput::Recovered(vec![]));
    }

    #[test]
    fn dense_vector_reported_dense() {
        let mut s = seeds(4);
        let mut rec = SparseRecovery::new(1 << 14, 4, &mut s);
        for i in 0..2000u64 {
            rec.update(i * 7 % (1 << 14), 1);
        }
        assert_eq!(rec.recover(), RecoveryOutput::Dense);
    }

    #[test]
    fn capacity_boundary() {
        // exactly `capacity` coordinates must still be recoverable
        let mut s = seeds(5);
        let cap = 12usize;
        let mut rec = SparseRecovery::new(1 << 12, cap, &mut s);
        let entries: Vec<(u64, i64)> =
            (0..cap as u64).map(|i| (i * 300 + 7, i as i64 + 1)).collect();
        for &(i, v) in &entries {
            rec.update(i, v);
        }
        match rec.recover() {
            RecoveryOutput::Recovered(out) => assert_eq!(out.len(), cap),
            RecoveryOutput::Dense => panic!("capacity-sized vector reported dense"),
        }
    }

    #[test]
    fn subtract_recovers_difference() {
        // The universal-relation protocol sketches x and y separately and
        // recovers x - y from the subtracted sketches.
        let mut s = seeds(6);
        let proto = SparseRecovery::new(4096, 6, &mut s);
        let mut sx = proto.clone();
        let mut sy = proto.clone();
        for i in 0..500u64 {
            sx.update(i, 1);
            sy.update(i, 1); // identical mass cancels in the difference
        }
        sx.update(1000, 5);
        sy.update(2000, 3);
        let mut diff = sx.clone();
        diff.subtract(&sy);
        match diff.recover() {
            RecoveryOutput::Recovered(out) => assert_eq!(out, vec![(1000, 5), (2000, -3)]),
            RecoveryOutput::Dense => panic!("difference should be 2-sparse"),
        }
    }

    #[test]
    fn merge_is_additive() {
        let mut s = seeds(7);
        let proto = SparseRecovery::new(512, 4, &mut s);
        let mut a = proto.clone();
        let mut b = proto.clone();
        a.update(10, 2);
        b.update(10, 3);
        b.update(20, -1);
        a.merge(&b);
        match a.recover() {
            RecoveryOutput::Recovered(out) => assert_eq!(out, vec![(10, 5), (20, -1)]),
            RecoveryOutput::Dense => panic!("merged sparse vectors should recover"),
        }
    }

    #[test]
    fn process_stream() {
        let mut s = seeds(8);
        let mut rec = SparseRecovery::new(64, 4, &mut s);
        let stream = UpdateStream::from_updates(
            64,
            TurnstileModel::General,
            vec![Update::new(1, 4), Update::new(2, -4), Update::new(1, -4)],
        );
        rec.process(&stream);
        assert_eq!(rec.recover(), RecoveryOutput::Recovered(vec![(2, -4)]));
    }

    #[test]
    fn space_is_linear_in_capacity() {
        let mut s = seeds(9);
        let small = SparseRecovery::new(1 << 20, 4, &mut s);
        let large = SparseRecovery::new(1 << 20, 64, &mut s);
        assert!(large.space().counters > 8 * small.space().counters);
        assert!(small.bits_used() > 0);
    }
}

//! Merge-law property tests for every `Mergeable` sketch: commutativity and
//! associativity, pinned at the bit level via `state_digest` wherever the
//! counters are exact (integer, field, or integer-valued `f64`), and at the
//! estimator level for the p-stable sketch whose counters hold arbitrary
//! reals (floating-point addition commutes bitwise but reassociates only
//! approximately).

use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, LinearSketch, Mergeable,
    PStableSketch, SparseRecovery,
};
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 256;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -50i64..50), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

/// Ingest three streams into identically-seeded clones and return
/// `(a, b, c)` ready for merge-law checks.
fn three_sketches<S: Clone>(
    proto: &S,
    ingest: impl Fn(&mut S, &[Update]),
    a: &[(u64, i64)],
    b: &[(u64, i64)],
    c: &[(u64, i64)],
) -> (S, S, S) {
    let mut sa = proto.clone();
    let mut sb = proto.clone();
    let mut sc = proto.clone();
    ingest(&mut sa, &to_updates(a));
    ingest(&mut sb, &to_updates(b));
    ingest(&mut sc, &to_updates(c));
    (sa, sb, sc)
}

/// Exact (bitwise) commutativity and associativity of `merge_from`.
fn assert_exact_merge_laws<S: Mergeable + Clone>(sa: &S, sb: &S, sc: &S) {
    // commutativity: a + b == b + a
    let mut ab = sa.clone();
    ab.merge_from(sb);
    let mut ba = sb.clone();
    ba.merge_from(sa);
    assert_eq!(ab.state_digest(), ba.state_digest(), "merge must commute");
    // associativity: (a + b) + c == a + (b + c)
    let mut ab_c = ab;
    ab_c.merge_from(sc);
    let mut bc = sb.clone();
    bc.merge_from(sc);
    let mut a_bc = sa.clone();
    a_bc.merge_from(&bc);
    assert_eq!(ab_c.state_digest(), a_bc.state_digest(), "merge must associate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sparse_recovery_merge_laws(a in updates_strategy(40), b in updates_strategy(40), c in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 6, &mut seeds);
        let (sa, sb, sc) = three_sketches(&proto, |s, u| s.process_batch(u), &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn count_sketch_merge_laws(a in updates_strategy(40), b in updates_strategy(40), c in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 4, 5, &mut seeds);
        let (sa, sb, sc) = three_sketches(&proto, LinearSketch::process_batch, &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn count_min_merge_laws(a in updates_strategy(40), b in updates_strategy(40), c in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinSketch::new(DIM, 16, 5, &mut seeds);
        let (sa, sb, sc) = three_sketches(&proto, |s, u| s.process_batch(u), &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn count_median_merge_laws(a in updates_strategy(40), b in updates_strategy(40), c in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMedianSketch::new(DIM, 16, 5, &mut seeds);
        let (sa, sb, sc) = three_sketches(&proto, LinearSketch::process_batch, &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn ams_merge_laws(a in updates_strategy(40), b in updates_strategy(40), c in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AmsSketch::new(DIM, 5, 4, &mut seeds);
        let (sa, sb, sc) = three_sketches(&proto, LinearSketch::process_batch, &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn pstable_merge_commutes_bitwise_and_associates_approximately(
        a in updates_strategy(30), b in updates_strategy(30), c in updates_strategy(30), seed in any::<u64>()
    ) {
        let mut seeds = SeedSequence::new(seed);
        let proto = PStableSketch::new(DIM, 1.0, 15, &mut seeds);
        let (sa, sb, sc) = three_sketches(&proto, LinearSketch::process_batch, &a, &b, &c);
        // IEEE 754 addition commutes bitwise, so commutativity is exact even
        // with irrational p-stable coefficients in the counters.
        let mut ab = sa.clone();
        ab.merge_from(&sb);
        let mut ba = sb.clone();
        ba.merge_from(&sa);
        prop_assert_eq!(ab.state_digest(), ba.state_digest());
        // Reassociation changes rounding, so associativity is checked on the
        // norm estimate instead of the raw bits.
        let mut ab_c = ab;
        ab_c.merge_from(&sc);
        let mut bc = sb.clone();
        bc.merge_from(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge_from(&bc);
        let (x, y) = (ab_c.estimate(), a_bc.estimate());
        prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
            "p-stable merge reassociation drifted: {} vs {}", x, y);
    }

    #[test]
    fn merged_sparse_recovery_recovers_the_sum_vector(a in updates_strategy(6), b in updates_strategy(6), seed in any::<u64>()) {
        // semantic check on top of the bit-level laws: merge really is the
        // sketch of the concatenated streams.
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 16, &mut seeds);
        let mut sa = proto.clone();
        sa.process_batch(&to_updates(&a));
        let mut sb = proto.clone();
        sb.process_batch(&to_updates(&b));
        sa.merge_from(&sb);
        let mut concat = proto.clone();
        concat.process_batch(&to_updates(&a));
        concat.process_batch(&to_updates(&b));
        prop_assert_eq!(sa.state_digest(), concat.state_digest());
        prop_assert_eq!(sa.recover(), concat.recover());
    }
}

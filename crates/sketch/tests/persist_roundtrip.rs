//! Round-trip and rejection properties of the versioned wire format for
//! every sketch in this crate.
//!
//! The round-trip law: for any reachable state — freshly constructed,
//! partially ingested, or produced by merging — `decode(encode(s))` succeeds
//! and reproduces the `state_digest` bit for bit. The rejection law: every
//! malformed buffer (truncated at any prefix, appended-to, wrong magic /
//! version / structure tag, corrupted bytes) decodes to a typed
//! [`DecodeError`], never a panic.

use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, LinearSketch, Mergeable,
    OneSparseCell, PStableSketch, Persist, SparseRecovery,
};
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 256;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -50i64..50), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

/// The three states the round-trip law must cover: after partial ingestion
/// on each operand, and after a merge.
fn assert_roundtrips<S: Persist + Mergeable + Clone>(
    proto: &S,
    ingest: impl Fn(&mut S, &[Update]),
    a: &[(u64, i64)],
    b: &[(u64, i64)],
) {
    let mut sa = proto.clone();
    let mut sb = proto.clone();
    ingest(&mut sa, &to_updates(a));
    ingest(&mut sb, &to_updates(b));

    for s in [&sa, &sb] {
        let decoded = S::decode_state(&s.encode_to_vec()).expect("round-trip decode");
        assert_eq!(decoded.state_digest(), s.state_digest(), "partial-ingest digest drifted");
    }

    // decoded states must also *behave* identically: merging a decoded copy
    // equals merging the original
    let mut merged = sa.clone();
    merged.merge_from(&sb);
    let mut merged_via_codec = S::decode_state(&sa.encode_to_vec()).expect("decode a");
    merged_via_codec.merge_from(&S::decode_state(&sb.encode_to_vec()).expect("decode b"));
    assert_eq!(
        merged.state_digest(),
        merged_via_codec.state_digest(),
        "merge of decoded states diverged"
    );

    // and the merged state itself round-trips
    let decoded = S::decode_state(&merged.encode_to_vec()).expect("decode merged");
    assert_eq!(decoded.state_digest(), merged.state_digest(), "merged digest drifted");
}

/// Every malformed variant of a valid encoding is rejected with a typed
/// error and never panics.
fn assert_rejects_malformed<S: Persist>(state: &S) {
    let good = state.encode_to_vec();
    assert!(S::decode_state(&good).is_ok(), "the untouched encoding must decode");

    // truncation at every prefix length
    for cut in 0..good.len() {
        assert!(S::decode_state(&good[..cut]).is_err(), "prefix of {cut} bytes accepted");
    }
    // appended garbage
    let mut long = good.clone();
    long.extend_from_slice(&[0xAB, 0xCD]);
    assert!(S::decode_state(&long).is_err(), "trailing bytes accepted");
    // header corruption: magic, version, tag
    for byte in 0..8 {
        let mut bad = good.clone();
        bad[byte] ^= 0x5A;
        // decoding may only fail (typically BadMagic / UnsupportedVersion /
        // WrongStructure); calling it must never panic
        let _ = S::decode_state(&bad);
    }
    // single-byte corruption across a sample of the whole buffer: decode is
    // total — either a typed error or a structurally valid state, no panics
    let step = (good.len() / 64).max(1);
    for pos in (0..good.len()).step_by(step) {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        let _ = S::decode_state(&bad);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sparse_recovery_roundtrip(a in updates_strategy(40), b in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 6, &mut seeds);
        assert_roundtrips(&proto, |s, u| s.process_batch(u), &a, &b);
    }

    #[test]
    fn count_sketch_roundtrip(a in updates_strategy(40), b in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 4, 5, &mut seeds);
        assert_roundtrips(&proto, LinearSketch::process_batch, &a, &b);
    }

    #[test]
    fn count_min_roundtrip(a in updates_strategy(40), b in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinSketch::new(DIM, 32, 5, &mut seeds);
        assert_roundtrips(&proto, |s, u| s.process_batch(u), &a, &b);
    }

    #[test]
    fn count_median_roundtrip(a in updates_strategy(40), b in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMedianSketch::new(DIM, 32, 5, &mut seeds);
        assert_roundtrips(&proto, LinearSketch::process_batch, &a, &b);
    }

    #[test]
    fn ams_roundtrip(a in updates_strategy(30), b in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AmsSketch::new(DIM, 5, 4, &mut seeds);
        assert_roundtrips(&proto, LinearSketch::process_batch, &a, &b);
    }

    #[test]
    fn pstable_roundtrip(a in updates_strategy(30), b in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = PStableSketch::new(DIM, 1.0, 9, &mut seeds);
        assert_roundtrips(&proto, LinearSketch::process_batch, &a, &b);
    }

    #[test]
    fn one_sparse_cell_roundtrip(a in updates_strategy(20), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let r = lps_hash::Fp::new(seeds.next_u64() % (lps_hash::MERSENNE_P - 2) + 1);
        let mut cell = OneSparseCell::new();
        for (i, d) in a {
            cell.update(i, d, r);
        }
        let decoded = OneSparseCell::decode_state(&cell.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded.state_digest(), cell.state_digest());
        prop_assert_eq!(decoded, cell);
    }
}

#[test]
fn malformed_buffers_rejected_for_every_sketch() {
    let mut seeds = SeedSequence::new(99);
    let ups = to_updates(&[(3, 5), (100, -2), (3, 4), (250, 7)]);

    let mut sr = SparseRecovery::new(DIM, 6, &mut seeds);
    sr.process_batch(&ups);
    assert_rejects_malformed(&sr);

    let mut cs = CountSketch::new(DIM, 4, 5, &mut seeds);
    LinearSketch::process_batch(&mut cs, &ups);
    assert_rejects_malformed(&cs);

    let mut cm = CountMinSketch::new(DIM, 32, 5, &mut seeds);
    cm.process_batch(&ups);
    assert_rejects_malformed(&cm);

    let mut cmed = CountMedianSketch::new(DIM, 32, 5, &mut seeds);
    LinearSketch::process_batch(&mut cmed, &ups);
    assert_rejects_malformed(&cmed);

    let mut ams = AmsSketch::new(DIM, 5, 4, &mut seeds);
    LinearSketch::process_batch(&mut ams, &ups);
    assert_rejects_malformed(&ams);

    let mut ps = PStableSketch::new(DIM, 1.5, 9, &mut seeds);
    LinearSketch::process_batch(&mut ps, &ups);
    assert_rejects_malformed(&ps);
}

#[test]
fn decoded_sparse_recovery_still_recovers() {
    // behavioural equality beyond the digest: the decoded structure answers
    // queries and absorbs further updates exactly like the original
    let mut seeds = SeedSequence::new(7);
    let mut sr = SparseRecovery::new(1 << 12, 8, &mut seeds);
    sr.update(17, 4);
    sr.update(3000, -9);
    let mut decoded = SparseRecovery::decode_state(&sr.encode_to_vec()).unwrap();
    assert_eq!(decoded.recover(), sr.recover());
    decoded.update(17, -4);
    sr.update(17, -4);
    assert_eq!(decoded.state_digest(), sr.state_digest());
    assert_eq!(decoded.recover(), sr.recover());
}

#[test]
fn cross_structure_decode_reports_wrong_tag() {
    let mut seeds = SeedSequence::new(8);
    let cm = CountMinSketch::new(DIM, 16, 3, &mut seeds);
    let bytes = cm.encode_to_vec();
    match CountMedianSketch::decode_state(&bytes) {
        Err(lps_sketch::DecodeError::WrongStructure { .. }) => {}
        other => panic!("expected WrongStructure, got {other:?}"),
    }
}

//! Property-based tests for the linear sketches: linearity under arbitrary
//! update sequences, exactness of sparse recovery, and estimator sanity.

use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, LinearSketch, PStableSketch,
    RecoveryOutput, SparseRecovery,
};
use lps_stream::{TruthVector, TurnstileModel, Update, UpdateStream};
use proptest::prelude::*;

const DIM: u64 = 256;

/// Strategy: a small update stream over DIM coordinates with signed deltas.
fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -50i64..50), 0..max_len)
}

fn stream_of(updates: &[(u64, i64)]) -> UpdateStream {
    UpdateStream::from_updates(
        DIM,
        TurnstileModel::General,
        updates.iter().filter(|(_, d)| *d != 0).map(|&(i, d)| Update::new(i, d)).collect(),
    )
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

/// Drive one copy of a sketch sequentially and one through `process_batch`
/// (split into two chunks so chunk boundaries are exercised), then hand both
/// to the caller for a state comparison.
fn batch_vs_sequential<S: LinearSketch + Clone>(proto: &S, updates: &[Update]) -> (S, S) {
    let mut sequential = proto.clone();
    for u in updates {
        sequential.update_int(*u);
    }
    let mut batched = proto.clone();
    let half = updates.len() / 2;
    batched.process_batch(&updates[..half]);
    batched.process_batch(&updates[half..]);
    (sequential, batched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_sketch_is_linear(a in updates_strategy(40), b in updates_strategy(40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 4, 5, &mut seeds);
        let mut sa = proto.clone();
        let mut sb = proto.clone();
        let mut sab = proto.clone();
        for &(i, d) in &a { sa.update(i, d as f64); sab.update(i, d as f64); }
        for &(i, d) in &b { sb.update(i, d as f64); sab.update(i, d as f64); }
        let mut merged = sa.clone();
        merged.merge(&sb);
        // merging sketches of A and B equals sketching A ++ B, coordinate by coordinate
        for i in 0..DIM {
            prop_assert!((merged.estimate(i) - sab.estimate(i)).abs() < 1e-6);
        }
        let mut diff = sab.clone();
        diff.subtract(&sb);
        for i in 0..DIM {
            prop_assert!((diff.estimate(i) - sa.estimate(i)).abs() < 1e-6);
        }
    }

    #[test]
    fn ams_f2_never_negative_and_zero_on_cancelling_streams(a in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let mut sketch = AmsSketch::new(DIM, 7, 4, &mut seeds);
        for &(i, d) in &a {
            sketch.update(i, d as f64);
            sketch.update(i, -(d as f64));
        }
        prop_assert!(sketch.f2_estimate().abs() < 1e-6, "fully cancelled stream must have zero F2");
        prop_assert!(sketch.l2_estimate() >= 0.0);
    }

    #[test]
    fn pstable_linearity(a in updates_strategy(20), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = PStableSketch::new(DIM, 1.0, 9, &mut seeds);
        let mut s1 = proto.clone();
        let mut s2 = proto.clone();
        // applying updates one at a time or split across two sketches then merged is identical
        for &(i, d) in &a { s1.update(i, d as f64); }
        let half = a.len() / 2;
        let mut sa = proto.clone();
        for &(i, d) in &a[..half] { sa.update(i, d as f64); }
        for &(i, d) in &a[half..] { s2.update(i, d as f64); }
        sa.merge(&s2);
        prop_assert!((sa.estimate() - s1.estimate()).abs() <= 1e-6 * (1.0 + s1.estimate().abs()));
    }

    #[test]
    fn count_median_estimates_exact_on_singletons(index in 0..DIM, delta in -100i64..100, seed in any::<u64>()) {
        prop_assume!(delta != 0);
        let mut seeds = SeedSequence::new(seed);
        let mut sketch = CountMedianSketch::new(DIM, 64, 5, &mut seeds);
        sketch.update(index, delta as f64);
        prop_assert!((sketch.estimate(index) - delta as f64).abs() < 1e-9);
    }

    #[test]
    fn sparse_recovery_is_exact_for_sparse_vectors(a in updates_strategy(60), seed in any::<u64>()) {
        let stream = stream_of(&a);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.l0() as usize;
        prop_assume!(support <= 12);
        let mut seeds = SeedSequence::new(seed);
        let mut rec = SparseRecovery::new(DIM, 12, &mut seeds);
        rec.process(&stream);
        match rec.recover() {
            RecoveryOutput::Recovered(entries) => {
                let expected: Vec<(u64, i64)> = truth
                    .support()
                    .into_iter()
                    .map(|i| (i, truth.get(i)))
                    .collect();
                prop_assert_eq!(entries, expected);
            }
            RecoveryOutput::Dense => prop_assert!(false, "a {}-sparse vector was reported dense", support),
        }
    }

    #[test]
    fn sparse_recovery_never_reports_wrong_entries_when_dense(a in updates_strategy(200), seed in any::<u64>()) {
        // Either Dense or exactly the right vector: recovery must not hallucinate.
        let stream = stream_of(&a);
        let truth = TruthVector::from_stream(&stream);
        let mut seeds = SeedSequence::new(seed);
        let mut rec = SparseRecovery::new(DIM, 6, &mut seeds);
        rec.process(&stream);
        if let RecoveryOutput::Recovered(entries) = rec.recover() {
            for (i, v) in entries {
                prop_assert_eq!(truth.get(i), v, "recovered a wrong value at {}", i);
            }
        }
    }

    // --- batched-vs-sequential equivalence: every structure exposing ---
    // --- process_batch must be interchangeable with the one-at-a-time path ---

    #[test]
    fn count_sketch_batch_matches_sequential_bit_for_bit(a in updates_strategy(80), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 4, 5, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        for i in 0..DIM {
            prop_assert_eq!(sequential.estimate(i).to_bits(), batched.estimate(i).to_bits());
        }
    }

    #[test]
    fn count_median_batch_matches_sequential_bit_for_bit(a in updates_strategy(80), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMedianSketch::new(DIM, 32, 5, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        for i in 0..DIM {
            prop_assert_eq!(sequential.estimate(i).to_bits(), batched.estimate(i).to_bits());
        }
    }

    #[test]
    fn count_min_batch_matches_sequential(a in updates_strategy(80), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinSketch::new(DIM, 32, 5, &mut seeds);
        let updates = to_updates(&a);
        let mut sequential = proto.clone();
        for u in &updates {
            sequential.update(u.index, u.delta);
        }
        let mut batched = proto.clone();
        let half = updates.len() / 2;
        batched.process_batch(&updates[..half]);
        batched.process_batch(&updates[half..]);
        for i in 0..DIM {
            prop_assert_eq!(sequential.estimate(i), batched.estimate(i));
        }
    }

    #[test]
    fn ams_batch_matches_sequential_bit_for_bit(a in updates_strategy(60), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AmsSketch::new(DIM, 5, 4, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        prop_assert_eq!(sequential.f2_estimate().to_bits(), batched.f2_estimate().to_bits());
    }

    #[test]
    fn pstable_batch_matches_sequential_bit_for_bit(a in updates_strategy(60), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = PStableSketch::new(DIM, 1.0, 9, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        prop_assert_eq!(sequential.estimate().to_bits(), batched.estimate().to_bits());
    }

    #[test]
    fn sparse_recovery_batch_matches_sequential(a in updates_strategy(80), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 8, &mut seeds);
        let updates = to_updates(&a);
        let mut sequential = proto.clone();
        for u in &updates {
            sequential.update(u.index, u.delta);
        }
        let mut reference = proto.clone();
        for u in &updates {
            reference.update_reference(u.index, u.delta);
        }
        let mut batched = proto.clone();
        let half = updates.len() / 2;
        batched.process_batch(&updates[..half]);
        batched.process_batch(&updates[half..]);
        // the recover() output is a total observation of the decodable state
        prop_assert_eq!(sequential.recover(), batched.recover());
        prop_assert_eq!(sequential.recover(), reference.recover());
    }

    #[test]
    fn count_sketch_top_m_contains_a_dominant_coordinate(
        index in 0..DIM,
        heavy in 500i64..2000,
        noise in updates_strategy(30),
        seed in any::<u64>(),
    ) {
        let mut seeds = SeedSequence::new(seed);
        let mut sketch = CountSketch::new(DIM, 8, 9, &mut seeds);
        sketch.update(index, heavy as f64);
        for &(i, d) in &noise {
            if i != index {
                sketch.update(i, d as f64);
            }
        }
        let top = sketch.best_m_sparse(8);
        prop_assert!(top.indices().contains(&index),
            "a coordinate of weight {} must appear in the top-8", heavy);
    }
}

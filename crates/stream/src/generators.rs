//! Workload generators for the experiments.
//!
//! The paper's algorithms are evaluated on synthetic turnstile streams. The
//! generators here cover the workloads used throughout EXPERIMENTS.md:
//!
//! * frequency-vector workloads (uniform, Zipfian, sparse, signed/cancelling)
//!   used by the Lp sampler, heavy hitter, and norm-estimation experiments;
//! * duplicate-finding workloads: streams of letters of length `n+1`, `n−s`,
//!   and `n+s` over the alphabet `[n]` (Section 3 of the paper);
//! * adversarial "almost cancelled" workloads where nearly all mass
//!   disappears — the regime where insertion-only samplers break and the
//!   paper's samplers are required.
//!
//! Every generator is deterministic given a [`SeedSequence`], so experiments
//! are reproducible.

use lps_hash::SeedSequence;

use crate::update::{TurnstileModel, Update, UpdateStream};

/// A Zipfian (power-law) distribution over `[0, n)` with exponent `alpha`,
/// sampled by inverse-CDF lookup. Frequency of rank r is ∝ 1/(r+1)^alpha.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution for `n` items with exponent `alpha >= 0`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0);
        assert!(alpha >= 0.0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank according to the distribution.
    pub fn sample(&self, seeds: &mut SeedSequence) -> u64 {
        let u = (seeds.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i as u64,
            Err(i) => i.min(self.cdf.len() - 1) as u64,
        }
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: u64) -> f64 {
        let hi = self.cdf[r as usize];
        let lo = if r == 0 { 0.0 } else { self.cdf[r as usize - 1] };
        hi - lo
    }
}

/// Insert-only stream whose final vector has Zipfian frequencies: `length`
/// unit insertions with item ranks drawn Zipf(alpha), ranks mapped to indices
/// by a random permutation so heavy items are spread over `[0, n)`.
pub fn zipf_stream(n: u64, length: usize, alpha: f64, seeds: &mut SeedSequence) -> UpdateStream {
    let zipf = Zipf::new(n, alpha);
    let perm = random_permutation(n, seeds);
    // positive updates only, but tagged General so callers can append corrections
    let mut s = UpdateStream::new(n, TurnstileModel::General);
    for _ in 0..length {
        let rank = zipf.sample(seeds);
        s.push_insert(perm[rank as usize]);
    }
    s
}

/// Uniform insert-only stream: `length` unit insertions at uniform indices.
pub fn uniform_stream(n: u64, length: usize, seeds: &mut SeedSequence) -> UpdateStream {
    // positive updates only, but tagged General so callers can append corrections
    let mut s = UpdateStream::new(n, TurnstileModel::General);
    for _ in 0..length {
        s.push_insert(seeds.next_below(n));
    }
    s
}

/// A sparse vector workload: exactly `support_size` random coordinates get a
/// random non-zero value in `[-max_value, max_value] \ {0}`, delivered as one
/// update per coordinate, in random order.
pub fn sparse_vector_stream(
    n: u64,
    support_size: u64,
    max_value: i64,
    seeds: &mut SeedSequence,
) -> UpdateStream {
    assert!(support_size <= n);
    assert!(max_value >= 1);
    let support = sample_distinct(n, support_size, seeds);
    let mut s = UpdateStream::new(n, TurnstileModel::General);
    for idx in support {
        let magnitude = 1 + seeds.next_below(max_value as u64) as i64;
        let sign = if seeds.next_u64() & 1 == 1 { 1 } else { -1 };
        s.push(Update::new(idx, sign * magnitude));
    }
    s
}

/// A general-turnstile stream with mixed signed updates whose final vector has
/// `support_size` non-zero coordinates but whose intermediate states churn:
/// every surviving coordinate receives its mass split into `churn` updates
/// interleaved with insert-then-delete noise on other coordinates.
pub fn signed_churn_stream(
    n: u64,
    support_size: u64,
    max_value: i64,
    churn: usize,
    seeds: &mut SeedSequence,
) -> UpdateStream {
    assert!(support_size <= n);
    let base = sparse_vector_stream(n, support_size, max_value, seeds);
    let mut updates = Vec::new();
    for u in base.iter() {
        // split the final value into `churn` signed pieces that sum to it
        let pieces = churn.max(1);
        let mut emitted = 0i64;
        for c in 0..pieces {
            let last = c + 1 == pieces;
            let piece = if last {
                u.delta - emitted
            } else {
                let magnitude = 1 + seeds.next_below(max_value as u64) as i64;
                if seeds.next_u64() & 1 == 1 {
                    magnitude
                } else {
                    -magnitude
                }
            };
            emitted += piece;
            if piece != 0 {
                updates.push(Update::new(u.index, piece));
            }
        }
        // pure noise on a random other coordinate: +v then -v
        let noise_idx = seeds.next_below(n);
        let v = 1 + seeds.next_below(max_value as u64) as i64;
        updates.push(Update::new(noise_idx, v));
        updates.push(Update::new(noise_idx, -v));
    }
    // Shuffle deterministically, then append exact corrections so that the
    // noise still cancels (shuffling keeps multiset, so totals are unchanged).
    shuffle(&mut updates, seeds);
    UpdateStream::from_updates(n, TurnstileModel::General, updates)
}

/// An adversarial "almost cancelled" workload: a heavy uniform prefix of
/// insertions is almost entirely deleted again, leaving a small planted
/// residual vector. Insertion-time samplers are fooled by the prefix; correct
/// turnstile Lp samplers must track only the residual.
pub fn almost_cancelled_stream(
    n: u64,
    bulk: usize,
    residual_support: u64,
    seeds: &mut SeedSequence,
) -> UpdateStream {
    let mut s = UpdateStream::new(n, TurnstileModel::General);
    let mut inserted = Vec::with_capacity(bulk);
    for _ in 0..bulk {
        let i = seeds.next_below(n);
        s.push_insert(i);
        inserted.push(i);
    }
    // delete the bulk again, in a different order
    shuffle(&mut inserted, seeds);
    for i in inserted {
        s.push_delete(i);
    }
    // plant the residual
    let support = sample_distinct(n, residual_support, seeds);
    for idx in support {
        let v = 1 + seeds.next_below(8) as i64;
        s.push(Update::new(idx, v));
    }
    s
}

/// Duplicate-finding workload of length `n + 1` over the alphabet `[n]`
/// (Theorem 3 setting): a uniformly random sequence where `duplicate_count`
/// letters are planted twice and the rest appear at most once. By the
/// pigeonhole principle at least one duplicate always exists; we plant at
/// least one explicitly so the ground truth is known.
///
/// Returns the stream of letters (as unit insertions) and the sorted list of
/// letters that genuinely appear at least twice.
pub fn duplicate_stream_n_plus_1(
    n: u64,
    duplicate_count: u64,
    seeds: &mut SeedSequence,
) -> (UpdateStream, Vec<u64>) {
    assert!(n >= 2);
    let dups = duplicate_count.clamp(1, n / 2);
    // choose 2*dups... we need total length n+1: `dups` letters twice, and
    // n+1-2*dups letters once, all distinct.
    let once = (n + 1).saturating_sub(2 * dups);
    let distinct_needed = dups + once;
    assert!(distinct_needed <= n, "too few distinct letters for requested duplicates");
    let letters = sample_distinct(n, distinct_needed, seeds);
    let (dup_letters, single_letters) = letters.split_at(dups as usize);
    let mut seq: Vec<u64> = Vec::with_capacity((n + 1) as usize);
    for &d in dup_letters {
        seq.push(d);
        seq.push(d);
    }
    seq.extend_from_slice(single_letters);
    shuffle(&mut seq, seeds);
    let mut s = UpdateStream::new(n, TurnstileModel::InsertionOnly);
    for &letter in &seq {
        s.push_insert(letter);
    }
    let mut dup_sorted = dup_letters.to_vec();
    dup_sorted.sort_unstable();
    (s, dup_sorted)
}

/// Duplicate-finding workload of length `n - s` over `[n]` (Theorem 4
/// setting). If `duplicate_count == 0` the stream is a sequence of distinct
/// letters (the NO-DUPLICATE case); otherwise `duplicate_count` letters are
/// planted twice. Returns the stream and the sorted duplicates.
pub fn duplicate_stream_n_minus_s(
    n: u64,
    s: u64,
    duplicate_count: u64,
    seeds: &mut SeedSequence,
) -> (UpdateStream, Vec<u64>) {
    assert!(s < n, "stream length n - s must be positive");
    let length = n - s;
    assert!(2 * duplicate_count <= length, "too many duplicates for stream length");
    let once = length - 2 * duplicate_count;
    let distinct_needed = duplicate_count + once;
    assert!(distinct_needed <= n);
    let letters = sample_distinct(n, distinct_needed, seeds);
    let (dup_letters, single_letters) = letters.split_at(duplicate_count as usize);
    let mut seq: Vec<u64> = Vec::with_capacity(length as usize);
    for &d in dup_letters {
        seq.push(d);
        seq.push(d);
    }
    seq.extend_from_slice(single_letters);
    shuffle(&mut seq, seeds);
    let mut stream = UpdateStream::new(n, TurnstileModel::InsertionOnly);
    for &letter in &seq {
        stream.push_insert(letter);
    }
    let mut dup_sorted = dup_letters.to_vec();
    dup_sorted.sort_unstable();
    (stream, dup_sorted)
}

/// Duplicate-finding workload of length `n + s` over `[n]` (the oversampled
/// case at the end of Section 3). Uniformly random letters; the ground-truth
/// duplicates are computed exactly.
pub fn duplicate_stream_n_plus_s(
    n: u64,
    s: u64,
    seeds: &mut SeedSequence,
) -> (UpdateStream, Vec<u64>) {
    let length = n + s;
    let mut counts = vec![0u64; n as usize];
    let mut stream = UpdateStream::new(n, TurnstileModel::InsertionOnly);
    for _ in 0..length {
        let letter = seeds.next_below(n);
        counts[letter as usize] += 1;
        stream.push_insert(letter);
    }
    let dups = counts.iter().enumerate().filter(|(_, &c)| c >= 2).map(|(i, _)| i as u64).collect();
    (stream, dups)
}

/// 0/±1 vector workload used by the lower-bound discussion (Theorem 8): each
/// of the `n` coordinates independently becomes −1, 0 or +1 with the given
/// probabilities, delivered as single updates in random order.
pub fn pm_one_vector_stream(
    n: u64,
    p_plus: f64,
    p_minus: f64,
    seeds: &mut SeedSequence,
) -> UpdateStream {
    assert!(p_plus >= 0.0 && p_minus >= 0.0 && p_plus + p_minus <= 1.0);
    let mut updates = Vec::new();
    for i in 0..n {
        let u = (seeds.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if u < p_plus {
            updates.push(Update::new(i, 1));
        } else if u < p_plus + p_minus {
            updates.push(Update::new(i, -1));
        }
    }
    shuffle(&mut updates, seeds);
    UpdateStream::from_updates(n, TurnstileModel::General, updates)
}

/// Sample `k` distinct values from `[0, n)` (Floyd's algorithm), in random order.
pub fn sample_distinct(n: u64, k: u64, seeds: &mut SeedSequence) -> Vec<u64> {
    assert!(k <= n);
    let mut chosen = std::collections::HashSet::with_capacity(k as usize);
    let mut out = Vec::with_capacity(k as usize);
    for j in (n - k)..n {
        let t = seeds.next_below(j + 1);
        let v = if chosen.contains(&t) { j } else { t };
        chosen.insert(v);
        out.push(v);
    }
    shuffle(&mut out, seeds);
    out
}

/// A uniformly random permutation of `[0, n)`.
pub fn random_permutation(n: u64, seeds: &mut SeedSequence) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    shuffle(&mut v, seeds);
    v
}

/// Fisher–Yates shuffle driven by a [`SeedSequence`].
pub fn shuffle<T>(items: &mut [T], seeds: &mut SeedSequence) {
    let len = items.len();
    for i in (1..len).rev() {
        let j = seeds.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::TruthVector;

    fn seq(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn zipf_pmf_is_decreasing_and_normalised() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_stream_heavier_head() {
        let mut s = seq(1);
        let stream = zipf_stream(1000, 20_000, 1.2, &mut s);
        let v = TruthVector::from_stream(&stream);
        assert_eq!(v.sum(), 20_000);
        // the single heaviest coordinate should hold a macroscopic share
        let max = v.max_abs();
        assert!(max as f64 > 0.05 * 20_000.0, "head not heavy enough: {max}");
    }

    #[test]
    fn uniform_stream_covers_range() {
        let mut s = seq(2);
        let stream = uniform_stream(50, 5000, &mut s);
        let v = TruthVector::from_stream(&stream);
        assert_eq!(v.sum(), 5000);
        assert!(v.l0() > 45, "nearly all coordinates should be hit");
    }

    #[test]
    fn sparse_vector_stream_has_exact_support() {
        let mut s = seq(3);
        let stream = sparse_vector_stream(1000, 17, 50, &mut s);
        let v = TruthVector::from_stream(&stream);
        assert_eq!(v.l0(), 17);
        assert!(v.max_abs() <= 50);
    }

    #[test]
    fn signed_churn_stream_preserves_final_vector_support() {
        let mut s = seq(4);
        let stream = signed_churn_stream(500, 12, 20, 3, &mut s);
        let v = TruthVector::from_stream(&stream);
        // noise cancels, churn pieces sum to the planted values
        assert!(v.l0() <= 12, "support too large: {}", v.l0());
        assert!(v.l0() >= 1);
    }

    #[test]
    fn almost_cancelled_stream_leaves_only_residual() {
        let mut s = seq(5);
        let stream = almost_cancelled_stream(2000, 10_000, 5, &mut s);
        let v = TruthVector::from_stream(&stream);
        assert!(v.l0() <= 5);
        assert!(v.l0() >= 1);
        assert!(v.positive_mass() > 0);
    }

    #[test]
    fn duplicate_stream_n_plus_1_properties() {
        let mut s = seq(6);
        let (stream, dups) = duplicate_stream_n_plus_1(1000, 3, &mut s);
        assert_eq!(stream.len() as u64, 1001);
        assert_eq!(dups.len(), 3);
        let v = TruthVector::from_stream(&stream);
        for &d in &dups {
            assert_eq!(v.get(d), 2, "planted duplicate must appear twice");
        }
        // no letter appears more than twice by construction
        assert!(v.values().iter().all(|&c| c <= 2));
    }

    #[test]
    fn duplicate_stream_n_minus_s_no_duplicates_case() {
        let mut s = seq(7);
        let (stream, dups) = duplicate_stream_n_minus_s(512, 100, 0, &mut s);
        assert_eq!(stream.len() as u64, 412);
        assert!(dups.is_empty());
        let v = TruthVector::from_stream(&stream);
        assert!(v.values().iter().all(|&c| c <= 1));
    }

    #[test]
    fn duplicate_stream_n_minus_s_with_duplicates() {
        let mut s = seq(8);
        let (stream, dups) = duplicate_stream_n_minus_s(512, 50, 4, &mut s);
        assert_eq!(stream.len() as u64, 462);
        assert_eq!(dups.len(), 4);
        let v = TruthVector::from_stream(&stream);
        for &d in &dups {
            assert_eq!(v.get(d), 2);
        }
    }

    #[test]
    fn duplicate_stream_n_plus_s_ground_truth_correct() {
        let mut s = seq(9);
        let (stream, dups) = duplicate_stream_n_plus_s(256, 64, &mut s);
        assert_eq!(stream.len() as u64, 320);
        let v = TruthVector::from_stream(&stream);
        let expected: Vec<u64> = (0..256).filter(|&i| v.get(i) >= 2).collect();
        assert_eq!(dups, expected);
        assert!(!dups.is_empty(), "with s=n/4 duplicates exist with overwhelming probability");
    }

    #[test]
    fn pm_one_vector_stream_values() {
        let mut s = seq(10);
        let stream = pm_one_vector_stream(2000, 0.3, 0.3, &mut s);
        let v = TruthVector::from_stream(&stream);
        assert!(v.values().iter().all(|&c| c == -1 || c == 0 || c == 1));
        let nonzero = v.l0() as f64 / 2000.0;
        assert!((nonzero - 0.6).abs() < 0.06);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut s = seq(11);
        let sample = sample_distinct(100, 40, &mut s);
        assert_eq!(sample.len(), 40);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert!(sample.iter().all(|&v| v < 100));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut s = seq(12);
        let mut p = random_permutation(64, &mut s);
        p.sort_unstable();
        assert_eq!(p, (0..64).collect::<Vec<_>>());
    }
}

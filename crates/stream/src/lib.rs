//! # lps-stream
//!
//! Streaming substrate for the `lp-samplers` workspace: the turnstile
//! update-stream model of Jowhari–Sağlam–Tardos (PODS 2011), exact
//! ground-truth aggregation, workload generators, statistical comparison
//! utilities, and space accounting in the paper's bit model.
//!
//! * [`update`] — updates `(i, u)`, update streams, turnstile models.
//! * [`vector`] — exact frequency vectors, Lp norms, Lp distributions,
//!   `Err^m_2` tail errors.
//! * [`generators`] — Zipfian / uniform / sparse / cancelling streams and the
//!   duplicate-finding workloads of Section 3.
//! * [`stats`] — total variation distance, chi-square, relative error and
//!   summaries used to validate sampler output distributions.
//! * [`space`] — the bit-model space accounting shared by all sketches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod space;
pub mod stats;
pub mod update;
pub mod vector;

pub use generators::{
    almost_cancelled_stream, duplicate_stream_n_minus_s, duplicate_stream_n_plus_1,
    duplicate_stream_n_plus_s, pm_one_vector_stream, random_permutation, sample_distinct, shuffle,
    signed_churn_stream, sparse_vector_stream, uniform_stream, zipf_stream, Zipf,
};
pub use space::{counter_bits_for, SpaceBreakdown, SpaceUsage};
pub use stats::{
    bernoulli_tolerance, ks_statistic, relative_error, total_variation_distance,
    EmpiricalDistribution, Summary,
};
pub use update::{coalesce_updates, TurnstileModel, Update, UpdateStream, DEFAULT_BATCH_SIZE};
pub use vector::TruthVector;

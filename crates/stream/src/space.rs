//! Space accounting in the paper's bit model.
//!
//! The paper measures streaming algorithms by the number of bits of memory
//! they keep: integer counters of `O(log n)` bits each plus the stored random
//! seeds. Rust heap bytes are *not* the right measure (a `Vec<i64>` always
//! spends 64 bits per counter regardless of the magnitude bound), so every
//! sketch and sampler in this workspace implements [`SpaceUsage`] and reports
//! its footprint in the paper's model: counters × counter-width + randomness.

/// Breakdown of the memory footprint of a streaming data structure, in bits,
/// in the paper's accounting model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceBreakdown {
    /// Number of integer counters maintained.
    pub counters: u64,
    /// Width, in bits, charged per counter (typically `O(log n + log M)`).
    pub counter_bits: u64,
    /// Bits of stored randomness (hash function seeds, PRG seeds).
    pub randomness_bits: u64,
}

impl SpaceBreakdown {
    /// Create a breakdown.
    pub fn new(counters: u64, counter_bits: u64, randomness_bits: u64) -> Self {
        SpaceBreakdown { counters, counter_bits, randomness_bits }
    }

    /// Total bits: counters × width + randomness.
    pub fn total_bits(&self) -> u64 {
        self.counters * self.counter_bits + self.randomness_bits
    }

    /// Combine two breakdowns (e.g. a sampler that owns several sketches).
    /// The per-counter width of the combination is the maximum of the two,
    /// which keeps the total an upper bound.
    pub fn combine(&self, other: &SpaceBreakdown) -> SpaceBreakdown {
        SpaceBreakdown {
            counters: self.counters + other.counters,
            counter_bits: self.counter_bits.max(other.counter_bits),
            randomness_bits: self.randomness_bits + other.randomness_bits,
        }
    }
}

/// Trait implemented by every sketch and sampler: report the space it uses in
/// the paper's bit model.
pub trait SpaceUsage {
    /// The breakdown of counters and randomness for this structure.
    fn space(&self) -> SpaceBreakdown;

    /// Total bits used (counters × width + randomness).
    fn bits_used(&self) -> u64 {
        self.space().total_bits()
    }
}

/// The counter width, in bits, to charge for a stream over `[n]` whose
/// coordinates stay bounded by `max_value` in absolute value: sign bit plus
/// `⌈log2(n · max(2, max_value))⌉`, the standard discretization of the paper.
pub fn counter_bits_for(n: u64, max_value: u64) -> u64 {
    let magnitude = (n.max(2) as u128) * (max_value.max(2) as u128);
    1 + (128 - magnitude.leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_bits() {
        let b = SpaceBreakdown::new(10, 32, 128);
        assert_eq!(b.total_bits(), 10 * 32 + 128);
    }

    #[test]
    fn combine_adds_counters_and_randomness() {
        let a = SpaceBreakdown::new(10, 32, 100);
        let b = SpaceBreakdown::new(5, 40, 60);
        let c = a.combine(&b);
        assert_eq!(c.counters, 15);
        assert_eq!(c.counter_bits, 40);
        assert_eq!(c.randomness_bits, 160);
    }

    #[test]
    fn counter_bits_grow_logarithmically() {
        let small = counter_bits_for(1 << 10, 1);
        let large = counter_bits_for(1 << 20, 1);
        assert!(large > small);
        assert!(large <= 2 * small, "doubling the exponent should roughly double the bits");
        // n = 2^10, M = 2 -> 1 + ceil(log2(2^11)) = 1 + 11
        assert_eq!(counter_bits_for(1 << 10, 2), 13);
    }

    #[test]
    fn space_usage_trait_default_total() {
        struct Fake;
        impl SpaceUsage for Fake {
            fn space(&self) -> SpaceBreakdown {
                SpaceBreakdown::new(4, 8, 16)
            }
        }
        assert_eq!(Fake.bits_used(), 48);
    }
}

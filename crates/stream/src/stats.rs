//! Statistical test utilities for comparing sampler output against the exact
//! Lp distribution.
//!
//! Definition 1 of the paper defines the Lp distribution of a vector; an
//! ε-relative-error sampler must, conditioned on not failing, output index i
//! with probability `(1 ± ε)|x_i|^p/‖x‖_p^p + O(n^{-c})`. The experiment
//! harness estimates that output distribution empirically and compares it to
//! the exact distribution with the measures implemented here: total variation
//! distance, chi-square statistic, per-coordinate relative error, and simple
//! confidence helpers.

/// An empirical distribution over `[0, n)` built from observed samples.
#[derive(Debug, Clone)]
pub struct EmpiricalDistribution {
    counts: Vec<u64>,
    total: u64,
}

impl EmpiricalDistribution {
    /// Create an empty empirical distribution over `n` outcomes.
    pub fn new(n: u64) -> Self {
        EmpiricalDistribution { counts: vec![0; n as usize], total: 0 }
    }

    /// Record one observation of outcome `i`.
    pub fn record(&mut self, i: u64) {
        self.counts[i as usize] += 1;
        self.total += 1;
    }

    /// Record many observations.
    pub fn record_all<I: IntoIterator<Item = u64>>(&mut self, it: I) {
        for i in it {
            self.record(i);
        }
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observed count of outcome `i`.
    pub fn count(&self, i: u64) -> u64 {
        self.counts[i as usize]
    }

    /// Empirical probability of outcome `i`.
    pub fn probability(&self, i: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i as usize] as f64 / self.total as f64
        }
    }

    /// The empirical probability vector.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Total variation distance to a reference distribution.
    pub fn total_variation(&self, reference: &[f64]) -> f64 {
        total_variation_distance(&self.probabilities(), reference)
    }

    /// Pearson chi-square statistic against a reference distribution,
    /// restricted to outcomes with non-negligible expected count.
    pub fn chi_square(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.counts.len());
        let mut stat = 0.0;
        for (i, &p) in reference.iter().enumerate() {
            let expected = p * self.total as f64;
            if expected >= 1.0 {
                let observed = self.counts[i] as f64;
                stat += (observed - expected) * (observed - expected) / expected;
            }
        }
        stat
    }

    /// Maximum relative error of the empirical probabilities over the
    /// outcomes whose reference probability is at least `threshold` (small
    /// reference probabilities cannot be estimated reliably and are skipped).
    pub fn max_relative_error(&self, reference: &[f64], threshold: f64) -> f64 {
        assert_eq!(reference.len(), self.counts.len());
        let mut worst: f64 = 0.0;
        for (i, &p) in reference.iter().enumerate() {
            if p >= threshold {
                let q = self.probability(i as u64);
                worst = worst.max((q - p).abs() / p);
            }
        }
        worst
    }
}

/// Total variation distance `½ Σ |p_i − q_i|` between two probability vectors.
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal support size");
    0.5 * p.iter().zip(q.iter()).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Kolmogorov–Smirnov statistic (max CDF gap) between two probability vectors
/// on the ordered outcome space `0..n`.
pub fn ks_statistic(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    let mut cp = 0.0;
    let mut cq = 0.0;
    let mut worst: f64 = 0.0;
    for (a, b) in p.iter().zip(q.iter()) {
        cp += a;
        cq += b;
        worst = worst.max((cp - cq).abs());
    }
    worst
}

/// Relative error `|estimate − truth| / |truth|`; infinite if the truth is
/// zero and the estimate is not.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Summary statistics of a sample of f64 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than 2 values).
    pub stddev: f64,
    /// Median (by sorting).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl Summary {
    /// Compute summary statistics of a slice of values.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let pct = |q: f64| -> f64 {
            let rank = ((q * count as f64).ceil() as usize).clamp(1, count);
            sorted[rank - 1]
        };
        Summary {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            stddev: var.sqrt(),
            median: pct(0.5),
            p95: pct(0.95),
        }
    }
}

/// A standard-error based tolerance for comparing an empirical success rate
/// of `trials` Bernoulli trials against a target probability: returns
/// `sigmas * sqrt(p(1-p)/trials)`.
pub fn bernoulli_tolerance(p: f64, trials: u64, sigmas: f64) -> f64 {
    sigmas * (p * (1.0 - p) / trials as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_distance_basics() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        assert!((total_variation_distance(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation_distance(&p, &p), 0.0);
        // TV distance is symmetric
        assert_eq!(total_variation_distance(&p, &q), total_variation_distance(&q, &p));
    }

    #[test]
    fn tv_distance_disjoint_supports_is_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_statistic_basics() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        assert!((ks_statistic(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(ks_statistic(&p, &p), 0.0);
    }

    #[test]
    fn empirical_distribution_converges_to_truth() {
        // deterministic pattern with known frequencies
        let mut e = EmpiricalDistribution::new(4);
        for i in 0..10_000u64 {
            e.record(i % 4);
        }
        let reference = [0.25, 0.25, 0.25, 0.25];
        assert!(e.total_variation(&reference) < 1e-3);
        assert!(e.chi_square(&reference) < 1.0);
        assert!(e.max_relative_error(&reference, 0.01) < 1e-3);
        assert_eq!(e.total(), 10_000);
        assert_eq!(e.count(2), 2500);
    }

    #[test]
    fn empirical_distribution_detects_bias() {
        let mut e = EmpiricalDistribution::new(2);
        for _ in 0..900 {
            e.record(0);
        }
        for _ in 0..100 {
            e.record(1);
        }
        let reference = [0.5, 0.5];
        assert!(e.total_variation(&reference) > 0.35);
        assert!(e.chi_square(&reference) > 100.0);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(-1.1, -1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn bernoulli_tolerance_shrinks_with_trials() {
        let loose = bernoulli_tolerance(0.5, 100, 3.0);
        let tight = bernoulli_tolerance(0.5, 10_000, 3.0);
        assert!(tight < loose / 5.0);
    }
}

//! The turnstile update-stream model.
//!
//! Following the paper's notation section, an update stream is a sequence of
//! tuples `(i, u)` with `i ∈ [n]` and `u ∈ Z`, implicitly defining a vector
//! `x ∈ Z^n` that starts at zero and receives `x_i += u` per update. In the
//! *strict turnstile* model the final vector is guaranteed non-negative; in
//! the *general* model no such guarantee exists. All algorithms in the
//! workspace work in the general model unless documented otherwise.

/// A single turnstile update `(index, delta)`: adds `delta` to coordinate `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Update {
    /// Coordinate index in `[0, n)`.
    pub index: u64,
    /// Signed integer change applied to the coordinate.
    pub delta: i64,
}

impl Update {
    /// Construct an update.
    pub fn new(index: u64, delta: i64) -> Self {
        Update { index, delta }
    }

    /// A unit insertion of `index` (the "stream of letters" view used by the
    /// finding-duplicates problem: each letter `i` is the update `(i, +1)`).
    pub fn insert(index: u64) -> Self {
        Update { index, delta: 1 }
    }

    /// A unit deletion of `index`.
    pub fn delete(index: u64) -> Self {
        Update { index, delta: -1 }
    }
}

/// Which turnstile guarantee a stream satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnstileModel {
    /// Coordinates may be negative at any time, including at the end.
    General,
    /// Negative updates allowed, but the final vector is entrywise non-negative.
    Strict,
    /// Only positive updates (classic insertion-only cash-register model).
    InsertionOnly,
}

/// An in-memory update stream over a fixed dimension `n`.
///
/// This is the substrate every experiment runs on: generators produce an
/// `UpdateStream`, sketches consume its updates one at a time, and the
/// ground-truth [`crate::vector::TruthVector`] aggregates it exactly for
/// comparison.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    dimension: u64,
    model: TurnstileModel,
    updates: Vec<Update>,
}

impl UpdateStream {
    /// Create an empty stream over `[0, dimension)`.
    pub fn new(dimension: u64, model: TurnstileModel) -> Self {
        assert!(dimension > 0, "stream dimension must be positive");
        UpdateStream { dimension, model, updates: Vec::new() }
    }

    /// Create a stream from existing updates, validating the index range.
    pub fn from_updates(dimension: u64, model: TurnstileModel, updates: Vec<Update>) -> Self {
        assert!(dimension > 0);
        for u in &updates {
            assert!(u.index < dimension, "update index {} out of range {}", u.index, dimension);
        }
        UpdateStream { dimension, model, updates }
    }

    /// Dimension `n` of the underlying vector.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// The turnstile model this stream claims to satisfy.
    pub fn model(&self) -> TurnstileModel {
        self.model
    }

    /// Number of updates in the stream.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if the stream has no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Append a single update.
    pub fn push(&mut self, update: Update) {
        assert!(update.index < self.dimension, "update index out of range");
        if self.model == TurnstileModel::InsertionOnly {
            assert!(update.delta >= 0, "negative update in insertion-only stream");
        }
        self.updates.push(update);
    }

    /// Append a unit insertion of `index`.
    pub fn push_insert(&mut self, index: u64) {
        self.push(Update::insert(index));
    }

    /// Append a unit deletion of `index`.
    pub fn push_delete(&mut self, index: u64) {
        self.push(Update::delete(index));
    }

    /// Extend with many updates.
    pub fn extend<I: IntoIterator<Item = Update>>(&mut self, it: I) {
        for u in it {
            self.push(u);
        }
    }

    /// Iterate over the updates in stream order.
    pub fn iter(&self) -> std::slice::Iter<'_, Update> {
        self.updates.iter()
    }

    /// The updates as a slice.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Consume the stream, returning the update vector.
    pub fn into_updates(self) -> Vec<Update> {
        self.updates
    }

    /// Concatenate another stream (same dimension) after this one.
    pub fn concat(mut self, other: &UpdateStream) -> UpdateStream {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch in concat");
        self.updates.extend_from_slice(&other.updates);
        self
    }

    /// Total number of unit increments represented (sum of |delta|), a proxy
    /// for "stream length" when updates are ±1.
    pub fn total_weight(&self) -> u64 {
        self.updates.iter().map(|u| u.delta.unsigned_abs()).sum()
    }

    /// Check the strict-turnstile guarantee by exact aggregation. Returns true
    /// if every final coordinate is non-negative.
    pub fn verify_strict(&self) -> bool {
        let mut acc: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        for u in &self.updates {
            *acc.entry(u.index).or_insert(0) += u.delta;
        }
        acc.values().all(|&v| v >= 0)
    }
}

impl<'a> IntoIterator for &'a UpdateStream {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut s = UpdateStream::new(10, TurnstileModel::General);
        s.push(Update::new(3, 5));
        s.push_insert(4);
        s.push_delete(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.updates()[0], Update { index: 3, delta: 5 });
        assert_eq!(s.updates()[2], Update { index: 3, delta: -1 });
        assert_eq!(s.total_weight(), 7);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_rejected() {
        let mut s = UpdateStream::new(4, TurnstileModel::General);
        s.push(Update::new(4, 1));
    }

    #[test]
    #[should_panic]
    fn negative_update_rejected_in_insertion_only() {
        let mut s = UpdateStream::new(4, TurnstileModel::InsertionOnly);
        s.push(Update::new(1, -1));
    }

    #[test]
    fn verify_strict_detects_negative_final_coordinates() {
        let mut ok = UpdateStream::new(4, TurnstileModel::Strict);
        ok.push(Update::new(0, -2));
        ok.push(Update::new(0, 3));
        assert!(ok.verify_strict());

        let mut bad = UpdateStream::new(4, TurnstileModel::Strict);
        bad.push(Update::new(1, 1));
        bad.push(Update::new(1, -2));
        assert!(!bad.verify_strict());
    }

    #[test]
    fn concat_preserves_order() {
        let mut a = UpdateStream::new(8, TurnstileModel::General);
        a.push_insert(1);
        let mut b = UpdateStream::new(8, TurnstileModel::General);
        b.push_insert(2);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.updates()[0].index, 1);
        assert_eq!(c.updates()[1].index, 2);
    }

    #[test]
    fn from_updates_validates() {
        let ups = vec![Update::new(0, 1), Update::new(7, -3)];
        let s = UpdateStream::from_updates(8, TurnstileModel::General, ups);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dimension(), 8);
    }
}

//! The turnstile update-stream model.
//!
//! Following the paper's notation section, an update stream is a sequence of
//! tuples `(i, u)` with `i ∈ [n]` and `u ∈ Z`, implicitly defining a vector
//! `x ∈ Z^n` that starts at zero and receives `x_i += u` per update. In the
//! *strict turnstile* model the final vector is guaranteed non-negative; in
//! the *general* model no such guarantee exists. All algorithms in the
//! workspace work in the general model unless documented otherwise.

/// A single turnstile update `(index, delta)`: adds `delta` to coordinate `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Update {
    /// Coordinate index in `[0, n)`.
    pub index: u64,
    /// Signed integer change applied to the coordinate.
    pub delta: i64,
}

impl Update {
    /// Construct an update.
    pub fn new(index: u64, delta: i64) -> Self {
        Update { index, delta }
    }

    /// A unit insertion of `index` (the "stream of letters" view used by the
    /// finding-duplicates problem: each letter `i` is the update `(i, +1)`).
    pub fn insert(index: u64) -> Self {
        Update { index, delta: 1 }
    }

    /// A unit deletion of `index`.
    pub fn delete(index: u64) -> Self {
        Update { index, delta: -1 }
    }
}

/// Which turnstile guarantee a stream satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnstileModel {
    /// Coordinates may be negative at any time, including at the end.
    General,
    /// Negative updates allowed, but the final vector is entrywise non-negative.
    Strict,
    /// Only positive updates (classic insertion-only cash-register model).
    InsertionOnly,
}

/// An in-memory update stream over a fixed dimension `n`.
///
/// This is the substrate every experiment runs on: generators produce an
/// `UpdateStream`, sketches consume its updates one at a time, and the
/// ground-truth [`crate::vector::TruthVector`] aggregates it exactly for
/// comparison.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    dimension: u64,
    model: TurnstileModel,
    updates: Vec<Update>,
}

impl UpdateStream {
    /// Create an empty stream over `[0, dimension)`.
    pub fn new(dimension: u64, model: TurnstileModel) -> Self {
        assert!(dimension > 0, "stream dimension must be positive");
        UpdateStream { dimension, model, updates: Vec::new() }
    }

    /// Create a stream from existing updates, validating the index range.
    pub fn from_updates(dimension: u64, model: TurnstileModel, updates: Vec<Update>) -> Self {
        assert!(dimension > 0);
        for u in &updates {
            assert!(u.index < dimension, "update index {} out of range {}", u.index, dimension);
        }
        UpdateStream { dimension, model, updates }
    }

    /// Dimension `n` of the underlying vector.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// The turnstile model this stream claims to satisfy.
    pub fn model(&self) -> TurnstileModel {
        self.model
    }

    /// Number of updates in the stream.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if the stream has no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Append a single update.
    pub fn push(&mut self, update: Update) {
        assert!(update.index < self.dimension, "update index out of range");
        if self.model == TurnstileModel::InsertionOnly {
            assert!(update.delta >= 0, "negative update in insertion-only stream");
        }
        self.updates.push(update);
    }

    /// Append a unit insertion of `index`.
    pub fn push_insert(&mut self, index: u64) {
        self.push(Update::insert(index));
    }

    /// Append a unit deletion of `index`.
    pub fn push_delete(&mut self, index: u64) {
        self.push(Update::delete(index));
    }

    /// Extend with many updates.
    pub fn extend<I: IntoIterator<Item = Update>>(&mut self, it: I) {
        for u in it {
            self.push(u);
        }
    }

    /// Iterate over the updates in stream order.
    pub fn iter(&self) -> std::slice::Iter<'_, Update> {
        self.updates.iter()
    }

    /// Iterate over the updates in contiguous chunks of at most `size`
    /// updates — the shape the batched ingestion APIs consume
    /// (`process_batch` on samplers and sketches). The final chunk may be
    /// shorter; `size` must be positive.
    pub fn chunks(&self, size: usize) -> std::slice::Chunks<'_, Update> {
        assert!(size > 0, "chunk size must be positive");
        self.updates.chunks(size)
    }

    /// The updates as a slice.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Consume the stream, returning the update vector.
    pub fn into_updates(self) -> Vec<Update> {
        self.updates
    }

    /// Concatenate another stream (same dimension) after this one.
    pub fn concat(mut self, other: &UpdateStream) -> UpdateStream {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch in concat");
        self.updates.extend_from_slice(&other.updates);
        self
    }

    /// Total number of unit increments represented (sum of |delta|), a proxy
    /// for "stream length" when updates are ±1.
    pub fn total_weight(&self) -> u64 {
        self.updates.iter().map(|u| u.delta.unsigned_abs()).sum()
    }

    /// Check the strict-turnstile guarantee by exact aggregation. Returns true
    /// if every final coordinate is non-negative.
    pub fn verify_strict(&self) -> bool {
        let mut acc: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        for u in &self.updates {
            *acc.entry(u.index).or_insert(0) += u.delta;
        }
        acc.values().all(|&v| v >= 0)
    }
}

/// Default chunk size used when feeding a whole stream through a batched
/// ingestion path: large enough to amortise per-batch setup (coalescing
/// maps, cached hash evaluations), small enough to keep the per-batch
/// scratch in cache.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Coalesce a batch of updates into at most one `(index, total_delta)` entry
/// per distinct coordinate, sorted by index, dropping entries whose deltas
/// cancel to zero.
///
/// Because every sketch in the workspace is a *linear* function of the
/// frequency vector maintained with exact integer / field arithmetic,
/// applying the coalesced deltas leaves the structure in a state identical
/// to applying the original updates one at a time — this is the core of the
/// batched update fast path. (Floating-point sketches additionally need
/// their counter contents to stay within f64's exactly-representable
/// integer range, which every integer-update workload here does.)
pub fn coalesce_updates(updates: &[Update]) -> Vec<(u64, i64)> {
    // sort-based merge: one allocation, no per-entry tree nodes — this runs
    // on every batch of the hot ingestion path
    let mut entries: Vec<(u64, i64)> =
        updates.iter().filter(|u| u.delta != 0).map(|u| (u.index, u.delta)).collect();
    entries.sort_unstable_by_key(|&(i, _)| i);
    let mut out: Vec<(u64, i64)> = Vec::with_capacity(entries.len());
    for (index, delta) in entries {
        match out.last_mut() {
            Some((last, acc)) if *last == index => *acc += delta,
            _ => out.push((index, delta)),
        }
    }
    out.retain(|&(_, d)| d != 0);
    out
}

impl<'a> IntoIterator for &'a UpdateStream {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut s = UpdateStream::new(10, TurnstileModel::General);
        s.push(Update::new(3, 5));
        s.push_insert(4);
        s.push_delete(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.updates()[0], Update { index: 3, delta: 5 });
        assert_eq!(s.updates()[2], Update { index: 3, delta: -1 });
        assert_eq!(s.total_weight(), 7);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_rejected() {
        let mut s = UpdateStream::new(4, TurnstileModel::General);
        s.push(Update::new(4, 1));
    }

    #[test]
    #[should_panic]
    fn negative_update_rejected_in_insertion_only() {
        let mut s = UpdateStream::new(4, TurnstileModel::InsertionOnly);
        s.push(Update::new(1, -1));
    }

    #[test]
    fn verify_strict_detects_negative_final_coordinates() {
        let mut ok = UpdateStream::new(4, TurnstileModel::Strict);
        ok.push(Update::new(0, -2));
        ok.push(Update::new(0, 3));
        assert!(ok.verify_strict());

        let mut bad = UpdateStream::new(4, TurnstileModel::Strict);
        bad.push(Update::new(1, 1));
        bad.push(Update::new(1, -2));
        assert!(!bad.verify_strict());
    }

    #[test]
    fn concat_preserves_order() {
        let mut a = UpdateStream::new(8, TurnstileModel::General);
        a.push_insert(1);
        let mut b = UpdateStream::new(8, TurnstileModel::General);
        b.push_insert(2);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.updates()[0].index, 1);
        assert_eq!(c.updates()[1].index, 2);
    }

    #[test]
    fn chunks_cover_the_stream_in_order() {
        let mut s = UpdateStream::new(16, TurnstileModel::General);
        for i in 0..10u64 {
            s.push(Update::new(i, i as i64 + 1));
        }
        let chunks: Vec<&[Update]> = s.chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let flat: Vec<Update> = chunks.concat();
        assert_eq!(flat, s.updates());
    }

    #[test]
    fn coalesce_sums_deltas_and_drops_cancellations() {
        let ups = [
            Update::new(5, 3),
            Update::new(2, -1),
            Update::new(5, 4),
            Update::new(9, 2),
            Update::new(9, -2),
            Update::new(1, 0),
        ];
        assert_eq!(coalesce_updates(&ups), vec![(2, -1), (5, 7)]);
        assert!(coalesce_updates(&[]).is_empty());
    }

    #[test]
    fn from_updates_validates() {
        let ups = vec![Update::new(0, 1), Update::new(7, -3)];
        let s = UpdateStream::from_updates(8, TurnstileModel::General, ups);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dimension(), 8);
    }
}

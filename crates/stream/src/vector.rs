//! Exact ground-truth aggregation of update streams.
//!
//! Every experiment compares a sketch/sampler against the *exact* frequency
//! vector. [`TruthVector`] aggregates an update stream with 64-bit integer
//! counters and exposes the quantities the paper's analysis is phrased in:
//! Lp norms, the Lp distribution (Definition 1), the support, the best
//! m-sparse approximation error `Err^m_2(x)`, and positive/negative mass
//! `‖x‖₁⁺ / ‖x‖₁⁻` (used by Theorem 4).

use crate::update::{Update, UpdateStream};

/// Exact integer frequency vector defined by an update stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthVector {
    values: Vec<i64>,
}

impl TruthVector {
    /// The all-zero vector of the given dimension.
    pub fn zeros(dimension: u64) -> Self {
        TruthVector { values: vec![0; dimension as usize] }
    }

    /// Aggregate a whole stream exactly.
    pub fn from_stream(stream: &UpdateStream) -> Self {
        let mut v = TruthVector::zeros(stream.dimension());
        for u in stream {
            v.apply(*u);
        }
        v
    }

    /// Construct from explicit values.
    pub fn from_values(values: Vec<i64>) -> Self {
        assert!(!values.is_empty());
        TruthVector { values }
    }

    /// Apply a single update.
    pub fn apply(&mut self, u: Update) {
        let slot = &mut self.values[u.index as usize];
        *slot = slot.checked_add(u.delta).expect("ground-truth counter overflow");
    }

    /// Dimension `n`.
    pub fn dimension(&self) -> u64 {
        self.values.len() as u64
    }

    /// Coordinate value `x_i`.
    pub fn get(&self, index: u64) -> i64 {
        self.values[index as usize]
    }

    /// The raw values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Indices of non-zero coordinates (the support of `x`).
    pub fn support(&self) -> Vec<u64> {
        self.values.iter().enumerate().filter(|(_, &v)| v != 0).map(|(i, _)| i as u64).collect()
    }

    /// Number of non-zero coordinates, `‖x‖₀`.
    pub fn l0(&self) -> u64 {
        self.values.iter().filter(|&&v| v != 0).count() as u64
    }

    /// The Lp norm `‖x‖_p` for `p > 0`.
    pub fn lp_norm(&self, p: f64) -> f64 {
        assert!(p > 0.0, "use l0() for p = 0");
        let sum: f64 = self.values.iter().map(|&v| (v.abs() as f64).powf(p)).sum();
        sum.powf(1.0 / p)
    }

    /// `‖x‖_p^p`, the p-th power of the Lp norm (what the sampling weights use).
    pub fn lp_norm_pow(&self, p: f64) -> f64 {
        assert!(p > 0.0);
        self.values.iter().map(|&v| (v.abs() as f64).powf(p)).sum()
    }

    /// Sum of coordinates, `Σ x_i` (Theorem 4 tracks `s = −Σ x_i`).
    pub fn sum(&self) -> i64 {
        self.values.iter().sum()
    }

    /// Positive mass `‖x‖₁⁺ = Σ_{x_i > 0} x_i`.
    pub fn positive_mass(&self) -> i64 {
        self.values.iter().filter(|&&v| v > 0).sum()
    }

    /// Negative mass `‖x‖₁⁻ = Σ_{x_i < 0} |x_i|`.
    pub fn negative_mass(&self) -> i64 {
        self.values.iter().filter(|&&v| v < 0).map(|&v| -v).sum()
    }

    /// True iff at most `m` coordinates are non-zero.
    pub fn is_sparse(&self, m: u64) -> bool {
        self.l0() <= m
    }

    /// `Err^m_2(x)`: the L2 norm of `x` with its `m` largest-magnitude
    /// coordinates removed — the tail error that drives Lemma 1.
    pub fn err_m_2(&self, m: usize) -> f64 {
        let mut mags: Vec<f64> = self.values.iter().map(|&v| (v as f64).abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        mags.iter().skip(m).map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// The Lp distribution of Definition 1: coordinate `i` has probability
    /// `|x_i|^p / ‖x‖_p^p`. For `p = 0` this is uniform over the support.
    /// Returns `None` for the zero vector, on which the distribution is
    /// undefined (a perfect sampler may only fail there).
    pub fn lp_distribution(&self, p: f64) -> Option<Vec<f64>> {
        let n = self.values.len();
        if p == 0.0 {
            let k = self.l0();
            if k == 0 {
                return None;
            }
            let w = 1.0 / k as f64;
            return Some(self.values.iter().map(|&v| if v != 0 { w } else { 0.0 }).collect());
        }
        let total = self.lp_norm_pow(p);
        if total == 0.0 {
            return None;
        }
        let mut dist = Vec::with_capacity(n);
        for &v in &self.values {
            dist.push((v.abs() as f64).powf(p) / total);
        }
        Some(dist)
    }

    /// Maximum absolute coordinate value (used to validate the `poly(n)`
    /// boundedness assumption of the space accounting).
    pub fn max_abs(&self) -> i64 {
        self.values.iter().map(|&v| v.abs()).max().unwrap_or(0)
    }

    /// Entry-wise difference `self - other` (used by the universal relation
    /// protocol, which L0-samples `x - y`).
    pub fn difference(&self, other: &TruthVector) -> TruthVector {
        assert_eq!(self.dimension(), other.dimension());
        TruthVector {
            values: self.values.iter().zip(other.values.iter()).map(|(&a, &b)| a - b).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::TurnstileModel;

    fn vec_from(vals: &[i64]) -> TruthVector {
        TruthVector::from_values(vals.to_vec())
    }

    #[test]
    fn aggregation_matches_manual_sum() {
        let mut s = UpdateStream::new(5, TurnstileModel::General);
        s.push(Update::new(0, 3));
        s.push(Update::new(0, -1));
        s.push(Update::new(4, 7));
        s.push(Update::new(2, -2));
        let v = TruthVector::from_stream(&s);
        assert_eq!(v.values(), &[2, 0, -2, 0, 7]);
        assert_eq!(v.sum(), 7);
        assert_eq!(v.l0(), 3);
        assert_eq!(v.support(), vec![0, 2, 4]);
    }

    #[test]
    fn norms() {
        let v = vec_from(&[3, -4, 0]);
        assert!((v.lp_norm(2.0) - 5.0).abs() < 1e-12);
        assert!((v.lp_norm(1.0) - 7.0).abs() < 1e-12);
        assert!((v.lp_norm_pow(1.0) - 7.0).abs() < 1e-12);
        assert_eq!(v.l0(), 2);
        assert_eq!(v.max_abs(), 4);
    }

    #[test]
    fn positive_negative_mass() {
        let v = vec_from(&[2, -3, 0, 5, -1]);
        assert_eq!(v.positive_mass(), 7);
        assert_eq!(v.negative_mass(), 4);
        assert_eq!(v.sum(), 3);
    }

    #[test]
    fn err_m_2_drops_largest_coordinates() {
        let v = vec_from(&[10, -7, 3, 1, 0]);
        // dropping the top-2 magnitudes leaves {3, 1}
        let expected = ((3.0f64 * 3.0) + 1.0).sqrt();
        assert!((v.err_m_2(2) - expected).abs() < 1e-12);
        // dropping everything leaves zero
        assert_eq!(v.err_m_2(5), 0.0);
        // dropping nothing is the full L2 norm
        assert!((v.err_m_2(0) - v.lp_norm(2.0)).abs() < 1e-12);
    }

    #[test]
    fn lp_distribution_l1() {
        let v = vec_from(&[1, -1, 2, 0]);
        let d = v.lp_distribution(1.0).unwrap();
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.25).abs() < 1e-12);
        assert!((d[2] - 0.5).abs() < 1e-12);
        assert_eq!(d[3], 0.0);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lp_distribution_l0_uniform_over_support() {
        let v = vec_from(&[5, 0, -7, 0]);
        let d = v.lp_distribution(0.0).unwrap();
        assert_eq!(d, vec![0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn zero_vector_has_no_distribution() {
        let v = TruthVector::zeros(4);
        assert!(v.lp_distribution(1.0).is_none());
        assert!(v.lp_distribution(0.0).is_none());
    }

    #[test]
    fn difference() {
        let a = vec_from(&[1, 2, 3]);
        let b = vec_from(&[0, 2, 5]);
        assert_eq!(a.difference(&b).values(), &[1, 0, -2]);
    }

    #[test]
    fn sparsity_check() {
        let v = vec_from(&[0, 1, 0, 2]);
        assert!(v.is_sparse(2));
        assert!(v.is_sparse(3));
        assert!(!v.is_sparse(1));
    }
}

//! Property-based tests for the streaming substrate: ground-truth
//! aggregation, norms, distributions, statistics and generators.

use lps_hash::SeedSequence;
use lps_stream::{
    duplicate_stream_n_minus_s, duplicate_stream_n_plus_1, sample_distinct,
    total_variation_distance, TruthVector, TurnstileModel, Update, UpdateStream,
};
use proptest::prelude::*;

const DIM: u64 = 128;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -20i64..20), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn aggregation_is_order_invariant(mut a in updates_strategy(60), seed in any::<u64>()) {
        let stream1 = UpdateStream::from_updates(
            DIM, TurnstileModel::General,
            a.iter().map(|&(i, d)| Update::new(i, d)).collect());
        let v1 = TruthVector::from_stream(&stream1);
        // shuffle deterministically
        let mut seeds = SeedSequence::new(seed);
        lps_stream::shuffle(&mut a, &mut seeds);
        let stream2 = UpdateStream::from_updates(
            DIM, TurnstileModel::General,
            a.iter().map(|&(i, d)| Update::new(i, d)).collect());
        prop_assert_eq!(v1, TruthVector::from_stream(&stream2));
    }

    #[test]
    fn lp_distribution_is_a_probability_vector(a in updates_strategy(60), p in prop::sample::select(vec![0.0, 0.5, 1.0, 1.5, 2.0])) {
        let stream = UpdateStream::from_updates(
            DIM, TurnstileModel::General,
            a.iter().map(|&(i, d)| Update::new(i, d)).collect());
        let v = TruthVector::from_stream(&stream);
        match v.lp_distribution(p) {
            None => prop_assert_eq!(v.l0(), 0),
            Some(dist) => {
                let total: f64 = dist.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                for (i, &mass) in dist.iter().enumerate() {
                    prop_assert!(mass >= 0.0);
                    if v.get(i as u64) == 0 {
                        prop_assert_eq!(mass, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn norms_are_monotone_and_err_m_decreasing(a in updates_strategy(60)) {
        let stream = UpdateStream::from_updates(
            DIM, TurnstileModel::General,
            a.iter().map(|&(i, d)| Update::new(i, d)).collect());
        let v = TruthVector::from_stream(&stream);
        // Err^m_2 is non-increasing in m and bounded by the L2 norm
        let mut prev = f64::INFINITY;
        for m in 0..10 {
            let e = v.err_m_2(m);
            prop_assert!(e <= prev + 1e-9);
            prop_assert!(e <= v.lp_norm(2.0) + 1e-9);
            prev = e;
        }
        // positive mass − negative mass = sum
        prop_assert_eq!(v.positive_mass() - v.negative_mass(), v.sum());
    }

    #[test]
    fn tv_distance_is_a_metric_on_simple_inputs(x in prop::collection::vec(0.0f64..1.0, 8), y in prop::collection::vec(0.0f64..1.0, 8)) {
        // normalise both to probability vectors (skip degenerate all-zero draws)
        let sx: f64 = x.iter().sum();
        let sy: f64 = y.iter().sum();
        prop_assume!(sx > 1e-9 && sy > 1e-9);
        let p: Vec<f64> = x.iter().map(|v| v / sx).collect();
        let q: Vec<f64> = y.iter().map(|v| v / sy).collect();
        let d = total_variation_distance(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((total_variation_distance(&p, &p)).abs() < 1e-12);
        prop_assert!((d - total_variation_distance(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn sample_distinct_yields_distinct_in_range(n in 1u64..500, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let k = n / 2 + 1;
        let sample = sample_distinct(n, k.min(n), &mut seeds);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len());
        prop_assert!(sample.iter().all(|&v| v < n));
    }

    #[test]
    fn duplicate_stream_generators_keep_their_promises(seed in any::<u64>(), dups in 1u64..5) {
        let n = 64u64;
        let mut seeds = SeedSequence::new(seed);
        let (stream, planted) = duplicate_stream_n_plus_1(n, dups, &mut seeds);
        prop_assert_eq!(stream.len() as u64, n + 1);
        let truth = TruthVector::from_stream(&stream);
        for d in &planted {
            prop_assert!(truth.get(*d) >= 2);
        }
        prop_assert!(truth.values().iter().all(|&c| c <= 2));

        let (short, planted_short) = duplicate_stream_n_minus_s(n, 10, dups, &mut seeds);
        prop_assert_eq!(short.len() as u64, n - 10);
        let truth_short = TruthVector::from_stream(&short);
        for d in &planted_short {
            prop_assert!(truth_short.get(*d) >= 2);
        }
    }

    #[test]
    fn strict_turnstile_verification_matches_ground_truth(a in updates_strategy(60)) {
        let stream = UpdateStream::from_updates(
            DIM, TurnstileModel::General,
            a.iter().map(|&(i, d)| Update::new(i, d)).collect());
        let truth = TruthVector::from_stream(&stream);
        prop_assert_eq!(stream.verify_strict(), truth.values().iter().all(|&v| v >= 0));
    }
}

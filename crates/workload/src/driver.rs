//! The ramping open-loop load driver.
//!
//! Each step offers a fixed request rate for a fixed duration using
//! **open-loop pacing**: request `i` has a precomputed scheduled start
//! `step_start + i / rps`, and its latency is measured from that
//! scheduled start — not from when the driver got around to sending it.
//! A target that falls behind therefore accrues queueing delay into its
//! percentiles instead of silently slowing the offered rate down
//! (coordinated omission). The rate then ramps by `increment_rps` until
//! a step misses its target rate — **saturation** — or `max_rps` is
//! reached; the last rate the target kept up with is its
//! `sustainable_max_rps`.

use std::time::{Duration, Instant};

use lps_hash::SeedSequence;
use lps_service::{Query, ServiceError};
use lps_stream::Update;

use crate::generators::build_generator;
use crate::hist::LatencyHistogram;
use crate::spec::WorkloadSpec;
use crate::target::WorkloadTarget;

/// A step counts as sustained when it achieves at least this fraction of
/// its offered rate.
pub const SUSTAIN_FRACTION: f64 = 0.95;

/// Measured results of one rate step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Offered request rate of this step.
    pub target_rps: u32,
    /// Requests offered during the step.
    pub offered: u64,
    /// Rate actually achieved (`offered / wall-clock`).
    pub achieved_rps: f64,
    /// Whether the step sustained `SUSTAIN_FRACTION` of its target.
    pub met: bool,
    /// Median latency, microseconds (scheduled start → completion).
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: f64,
    /// Worst observed latency, microseconds.
    pub max_us: f64,
    /// Reads that completed with a typed application error (e.g. a
    /// saturated sparse-recovery structure declining to decode, or a
    /// sampler reporting its failure event). These are real, measured
    /// round-trips — a load test that aborted on the first one could
    /// never drive a structure past its design envelope on purpose.
    pub read_errors: u64,
}

/// The full result of ramping one spec against one target.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// The spec's scenario name.
    pub spec_name: String,
    /// The target's short name (`"engine"` / `"service"`).
    pub target: &'static str,
    /// True when the ramp ended because a step missed its rate (rather
    /// than exhausting `max_rps` with every step sustained).
    pub saturated: bool,
    /// Achieved rate of the last sustained step (0 when even the first
    /// step missed).
    pub sustainable_max_rps: f64,
    /// Total requests issued across all steps.
    pub total_requests: u64,
    /// Total stream updates written across all steps.
    pub total_updates: u64,
    /// Total reads that completed with a typed application error.
    pub total_read_errors: u64,
    /// Per-step measurements, in ramp order.
    pub steps: Vec<StepReport>,
}

/// Sleep-then-spin wait to a deadline: coarse sleep while far away (the
/// OS timer slop is real), spin the final stretch for tight pacing.
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(500) {
            std::thread::sleep(remaining - Duration::from_micros(300));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Pre-resolved read-traffic pool: `(tag, kind)` with cumulative weights.
struct ReadPool {
    entries: Vec<(u16, ReadKind, u32)>,
    total_weight: u64,
}

#[derive(Clone, Copy)]
enum ReadKind {
    Sample,
    PointEstimate,
    Duplicates,
}

impl ReadPool {
    fn new(spec: &WorkloadSpec) -> Self {
        let entries: Vec<(u16, ReadKind, u32)> = spec
            .readable_mix()
            .iter()
            .map(|e| {
                let kind = match e.structure.as_str() {
                    // The sparse-recovery slot's live query is duplicate
                    // extraction; the sampler slots answer Sample; the
                    // point-query sketches answer PointEstimate.
                    "sparse_recovery" => ReadKind::Duplicates,
                    "l0_sampler" | "fis_l0" => ReadKind::Sample,
                    _ => ReadKind::PointEstimate,
                };
                (e.tag, kind, e.weight)
            })
            .collect();
        let total_weight = entries.iter().map(|&(_, _, w)| w as u64).sum();
        ReadPool { entries, total_weight }
    }

    fn draw(&self, seeds: &mut SeedSequence, dimension: u64) -> Query {
        debug_assert!(self.total_weight > 0);
        let mut r = seeds.next_below(self.total_weight);
        for &(tag, kind, w) in &self.entries {
            if r < w as u64 {
                return match kind {
                    ReadKind::Sample => Query::Sample { structure: tag },
                    ReadKind::PointEstimate => {
                        Query::PointEstimate { structure: tag, index: seeds.next_below(dimension) }
                    }
                    ReadKind::Duplicates => Query::Duplicates { structure: tag },
                };
            }
            r -= w as u64;
        }
        unreachable!("weighted draw exhausted the pool")
    }
}

/// A failure that means the target itself is gone (socket torn, framing
/// poisoned), as opposed to a typed application answer like "that
/// structure is saturated" — the latter is a completed request.
fn is_transport_failure(e: &ServiceError) -> bool {
    matches!(e, ServiceError::Io(_) | ServiceError::Proto(_))
}

/// Ramp `spec` against `target` until saturation or `max_rps`.
///
/// Request randomness (read/write choice, tenant routing, query draws)
/// and the update stream are all derived from the spec's single seed, so
/// two runs of the same spec offer identical request sequences — the
/// only nondeterminism left is the thing being measured.
///
/// Writes and transport failures abort the run with the underlying
/// [`ServiceError`]; reads answered with a typed application error are
/// counted per step in [`StepReport::read_errors`] and keep the ramp
/// going (their latency is measured like any other request).
pub fn run_workload(
    spec: &WorkloadSpec,
    target: &mut dyn WorkloadTarget,
) -> Result<WorkloadOutcome, ServiceError> {
    let mut generator = build_generator(&spec.generator, spec.dimension, spec.seed);
    // Traffic decisions draw from an independent child of the master
    // seed so they never perturb the generator's stream.
    let mut traffic = SeedSequence::new(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
    let reads = ReadPool::new(spec);
    // read_ratio as a threshold over a 16-bit draw keeps this integral.
    let read_threshold = (spec.read_ratio * 65_536.0) as u64;

    let mut batch = vec![Update { index: 0, delta: 0 }; spec.batch];
    let mut steps = Vec::new();
    let mut saturated = false;
    let mut sustainable = 0.0f64;
    let mut total_requests = 0u64;
    let mut total_updates = 0u64;
    let mut total_read_errors = 0u64;

    let mut rps = spec.ramp.initial_rps;
    loop {
        let offered = ((rps as u64 * spec.ramp.step_duration_ms) / 1_000).max(1);
        let interval_ns = 1_000_000_000u64 / rps as u64;
        let mut hist = LatencyHistogram::new();
        let mut read_errors = 0u64;

        let step_start = Instant::now();
        for i in 0..offered {
            let scheduled = step_start + Duration::from_nanos(i * interval_ns);
            wait_until(scheduled);
            if reads.total_weight > 0 && traffic.next_below(65_536) < read_threshold {
                match target.read(reads.draw(&mut traffic, spec.dimension)) {
                    Ok(()) => {}
                    Err(e) if is_transport_failure(&e) => return Err(e),
                    Err(_) => read_errors += 1,
                }
            } else {
                generator.fill(&mut batch);
                let tenant = if spec.tenants == 0 || traffic.next_below(2) == 0 {
                    0
                } else {
                    1 + traffic.next_below(spec.tenants)
                };
                target.write(tenant, &batch)?;
                total_updates += batch.len() as u64;
            }
            hist.record(scheduled.elapsed().as_nanos() as u64);
        }
        let elapsed = step_start.elapsed().as_secs_f64();
        let achieved = offered as f64 / elapsed.max(1e-9);
        let met = achieved >= SUSTAIN_FRACTION * rps as f64;
        total_requests += offered;
        total_read_errors += read_errors;

        steps.push(StepReport {
            target_rps: rps,
            offered,
            achieved_rps: achieved,
            met,
            p50_us: hist.quantile(0.50) as f64 / 1_000.0,
            p99_us: hist.quantile(0.99) as f64 / 1_000.0,
            p999_us: hist.quantile(0.999) as f64 / 1_000.0,
            max_us: hist.max() as f64 / 1_000.0,
            read_errors,
        });

        if met {
            sustainable = achieved;
        } else {
            saturated = true;
            break;
        }
        if rps >= spec.ramp.max_rps {
            break;
        }
        rps = rps.saturating_add(spec.ramp.increment_rps).min(spec.ramp.max_rps);
    }

    Ok(WorkloadOutcome {
        spec_name: spec.name.clone(),
        target: target.name(),
        saturated,
        sustainable_max_rps: sustainable,
        total_requests,
        total_updates,
        total_read_errors,
        steps,
    })
}

//! Named, seeded, reusable stream generators.
//!
//! Every generator implements [`UpdateGenerator`]: an infinite turnstile
//! update source that is **deterministic from a single `u64` seed** and
//! **chunk-boundary independent** — drawing 10 updates then 90 yields the
//! same stream as drawing 100 at once, because all state advances per
//! update, never per chunk. Both laws are property-tested in
//! `tests/generator_laws.rs`.
//!
//! The five named distributions target distinct stress axes of the
//! sampler stack:
//!
//! | kind         | stresses                                              |
//! |--------------|-------------------------------------------------------|
//! | `uniform`    | baseline: even hash-bucket occupancy                  |
//! | `zipf`       | heavy hitters crowding CountSketch rows               |
//! | `turnstile`  | deletion-heavy phases dipping the live mass near zero |
//! | `duplicates` | duplicate-rich traffic for the FIS/duplicates path    |
//! | `collision`  | adversarial near-collisions: bursts of adjacent keys  |

use lps_hash::SeedSequence;
use lps_stream::generators::Zipf;
use lps_stream::Update;

use crate::spec::GeneratorSpec;

/// An infinite, seeded source of turnstile updates.
pub trait UpdateGenerator: Send {
    /// Draw the next update. Implementations advance their internal state
    /// exactly once per call, which is what makes the stream independent
    /// of how callers chunk their draws.
    fn next_update(&mut self) -> Update;

    /// Fill `out` by repeated [`next_update`](Self::next_update) calls.
    fn fill(&mut self, out: &mut [Update]) {
        for slot in out.iter_mut() {
            *slot = self.next_update();
        }
    }
}

/// Construct the generator a spec names, bound to the spec's dimension
/// and derived from the given seed.
pub fn build_generator(
    spec: &GeneratorSpec,
    dimension: u64,
    seed: u64,
) -> Box<dyn UpdateGenerator> {
    match *spec {
        GeneratorSpec::Uniform => Box::new(UniformGen::new(dimension, seed)),
        GeneratorSpec::Zipf { alpha } => Box::new(ZipfGen::new(dimension, alpha, seed)),
        GeneratorSpec::Turnstile { strict } => Box::new(TurnstileGen::new(dimension, strict, seed)),
        GeneratorSpec::Duplicates { distinct } => {
            Box::new(DuplicateGen::new(dimension, distinct, seed))
        }
        GeneratorSpec::Collision { spread } => Box::new(CollisionGen::new(dimension, spread, seed)),
    }
}

/// Insert-biased signed delta: ~70% inserts, magnitudes 1 or 2.
fn mixed_delta(seeds: &mut SeedSequence) -> i64 {
    let r = seeds.next_below(10);
    let magnitude = 1 + (r & 1) as i64;
    if r < 7 {
        magnitude
    } else {
        -magnitude
    }
}

/// Uniform keys over `[0, n)` with insert-biased unit-ish deltas.
pub struct UniformGen {
    n: u64,
    seeds: SeedSequence,
}

impl UniformGen {
    /// Uniform generator over `[0, n)`.
    pub fn new(n: u64, seed: u64) -> Self {
        UniformGen { n, seeds: SeedSequence::new(seed) }
    }
}

impl UpdateGenerator for UniformGen {
    fn next_update(&mut self) -> Update {
        let index = self.seeds.next_below(self.n);
        let delta = mixed_delta(&mut self.seeds);
        Update { index, delta }
    }
}

/// Zipf-skewed keys: rank `r` is drawn with probability ∝ `1/(r+1)^alpha`
/// and used directly as the coordinate, so low indices are heavy hitters.
pub struct ZipfGen {
    zipf: Zipf,
    seeds: SeedSequence,
}

impl ZipfGen {
    /// Zipf generator over `[0, n)` with exponent `alpha`.
    pub fn new(n: u64, alpha: f64, seed: u64) -> Self {
        // The inverse-CDF table is O(n); cap it so huge dimensions stay
        // cheap — ranks beyond the cap carry negligible Zipf mass anyway.
        let support = n.min(1 << 16);
        ZipfGen { zipf: Zipf::new(support, alpha), seeds: SeedSequence::new(seed) }
    }
}

impl UpdateGenerator for ZipfGen {
    fn next_update(&mut self) -> Update {
        let index = self.zipf.sample(&mut self.seeds);
        let delta = mixed_delta(&mut self.seeds);
        Update { index, delta }
    }
}

/// Deletion-heavy turnstile phases: grow the live mass to a high-water
/// mark, then drain it back until almost nothing survives, repeatedly.
/// This is the regime the paper's samplers must stay correct in — most
/// of what was inserted is deleted again, and answers hinge on the small
/// surviving support.
///
/// In `strict` mode deletions are only issued against coordinates with
/// positive counts (tracked exactly), so **no coordinate ever dips below
/// zero** — the strict turnstile model. Non-strict mode occasionally
/// deletes a uniformly random coordinate, permitting negative counts
/// (the general model).
pub struct TurnstileGen {
    n: u64,
    strict: bool,
    seeds: SeedSequence,
    /// Total live mass (sum of positive counts), driving the phase.
    mass: u64,
    /// True while inserting toward the high-water mark.
    growing: bool,
    /// Coordinates with count > 0, for O(1) deletion draws.
    live: Vec<u64>,
    /// `counts[i]` = current count of coordinate `live[position[i]]`;
    /// parallel to `live`.
    counts: Vec<u64>,
    /// Coordinate -> position in `live` (dense; sized `n`). u32::MAX
    /// sentinel = absent.
    position: Vec<u32>,
    high_water: u64,
    low_water: u64,
}

const ABSENT: u32 = u32::MAX;

impl TurnstileGen {
    /// Turnstile generator over `[0, n)`.
    pub fn new(n: u64, strict: bool, seed: u64) -> Self {
        let high_water = 768.min(4 * n).max(8);
        TurnstileGen {
            n,
            strict,
            seeds: SeedSequence::new(seed),
            mass: 0,
            growing: true,
            live: Vec::new(),
            counts: Vec::new(),
            position: vec![ABSENT; n as usize],
            high_water,
            low_water: 4,
        }
    }

    fn insert(&mut self) -> Update {
        let index = self.seeds.next_below(self.n);
        let pos = self.position[index as usize];
        if pos == ABSENT {
            self.position[index as usize] = self.live.len() as u32;
            self.live.push(index);
            self.counts.push(1);
        } else {
            self.counts[pos as usize] += 1;
        }
        self.mass += 1;
        Update { index, delta: 1 }
    }

    fn delete_live(&mut self) -> Update {
        debug_assert!(!self.live.is_empty());
        let pos = self.seeds.next_below(self.live.len() as u64) as usize;
        let index = self.live[pos];
        self.counts[pos] -= 1;
        self.mass -= 1;
        if self.counts[pos] == 0 {
            self.position[index as usize] = ABSENT;
            self.live.swap_remove(pos);
            self.counts.swap_remove(pos);
            if pos < self.live.len() {
                self.position[self.live[pos] as usize] = pos as u32;
            }
        }
        Update { index, delta: -1 }
    }
}

impl UpdateGenerator for TurnstileGen {
    fn next_update(&mut self) -> Update {
        if self.growing && self.mass >= self.high_water {
            self.growing = false;
        } else if !self.growing && self.mass <= self.low_water {
            self.growing = true;
        }
        if self.growing {
            // Mostly inserts on the way up, with some churn mixed in.
            if self.mass > 0 && self.seeds.next_below(8) == 0 {
                return self.delete_live();
            }
            self.insert()
        } else {
            // Draining: mostly deletes. Non-strict mode sometimes fires a
            // blind delete that may push a coordinate negative.
            if !self.strict && self.seeds.next_below(16) == 0 {
                let index = self.seeds.next_below(self.n);
                // Blind deletes bypass the live-set bookkeeping entirely;
                // the tracked mass intentionally ignores negative counts.
                return Update { index, delta: -1 };
            }
            if self.mass == 0 || self.seeds.next_below(8) == 0 {
                return self.insert();
            }
            self.delete_live()
        }
    }
}

/// Duplicate-rich traffic: a small churning pool of `distinct` keys is
/// hit over and over, mostly with `+1`, so the stream is dominated by
/// repeated occurrences of the same coordinates.
pub struct DuplicateGen {
    n: u64,
    seeds: SeedSequence,
    pool: Vec<u64>,
    /// Updates issued since the last pool-member replacement.
    since_churn: u64,
}

impl DuplicateGen {
    /// Duplicate-rich generator over `[0, n)` with a `distinct`-key pool.
    pub fn new(n: u64, distinct: u64, seed: u64) -> Self {
        let mut seeds = SeedSequence::new(seed);
        let pool_size = distinct.min(n).max(1);
        let pool = (0..pool_size).map(|_| seeds.next_below(n)).collect();
        DuplicateGen { n, seeds, pool, since_churn: 0 }
    }
}

impl UpdateGenerator for DuplicateGen {
    fn next_update(&mut self) -> Update {
        self.since_churn += 1;
        // Slowly rotate pool membership so the duplicate set drifts.
        if self.since_churn >= 512 {
            self.since_churn = 0;
            let slot = self.seeds.next_below(self.pool.len() as u64) as usize;
            self.pool[slot] = self.seeds.next_below(self.n);
        }
        let index = self.pool[self.seeds.next_below(self.pool.len() as u64) as usize];
        // Mostly inserts; rare deletes keep it a genuine turnstile stream.
        let delta = if self.seeds.next_below(12) == 0 { -1 } else { 1 };
        Update { index, delta }
    }
}

/// Adversarial near-collisions: updates cluster within `spread` of a hot
/// center that is re-drawn every 256 updates, producing bursts of
/// adjacent keys — the access pattern most likely to land many distinct
/// keys in the same hash buckets.
pub struct CollisionGen {
    n: u64,
    spread: u64,
    seeds: SeedSequence,
    center: u64,
    since_move: u64,
}

impl CollisionGen {
    /// Collision-burst generator over `[0, n)` with cluster width `spread`.
    pub fn new(n: u64, spread: u64, seed: u64) -> Self {
        let mut seeds = SeedSequence::new(seed);
        let center = seeds.next_below(n);
        CollisionGen { n, spread: spread.max(1), seeds, center, since_move: 0 }
    }
}

impl UpdateGenerator for CollisionGen {
    fn next_update(&mut self) -> Update {
        self.since_move += 1;
        if self.since_move >= 256 {
            self.since_move = 0;
            self.center = self.seeds.next_below(self.n);
        }
        let offset = self.seeds.next_below(self.spread);
        let index = (self.center + offset) % self.n;
        let delta = mixed_delta(&mut self.seeds);
        Update { index, delta }
    }
}

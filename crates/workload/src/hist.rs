//! HDR-style log-bucketed latency histogram.
//!
//! Values below `2^SUB_BITS` are recorded exactly; above that, each
//! power-of-two octave is split into `2^SUB_BITS` sub-buckets, bounding
//! the relative quantile error at `2^-SUB_BITS` (~3%) while keeping the
//! whole structure a flat `Vec<u64>` with O(1) recording — the shape
//! HdrHistogram popularised for coordinated-omission-free load tests.

/// Sub-bucket resolution: 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;

/// Log-bucketed histogram of non-negative integer samples (here:
/// nanosecond latencies).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // 64 octaves × 32 sub-buckets is a fixed 16 KiB; no resizing.
        LatencyHistogram {
            buckets: vec![0; (64 - SUB_BITS as usize + 1) << SUB_BITS],
            count: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < (1 << SUB_BITS) {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = (value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
        (((exp - SUB_BITS + 1) as usize) << SUB_BITS) | sub as usize
    }

    /// The representative (lower-bound) value of a bucket.
    fn bucket_value(idx: usize) -> u64 {
        if idx < (1 << SUB_BITS) {
            return idx as u64;
        }
        let octave = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
        (1u64 << octave) | (sub << (octave - SUB_BITS))
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`, within ~3% relative error.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / 32.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1..=100_000 uniformly: p50 ≈ 50_000, p99 ≈ 99_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.04, "p50 = {p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.04, "p99 = {p99}");
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn bucket_value_is_a_lower_bound_of_its_bucket() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, u64::MAX >> 1, u64::MAX] {
            let idx = LatencyHistogram::bucket_index(v);
            let rep = LatencyHistogram::bucket_value(idx);
            assert!(rep <= v, "representative {rep} exceeds sample {v}");
            // ...and within one sub-bucket width below it.
            if v >= 1 << SUB_BITS {
                assert!((v - rep) as f64 / v as f64 <= 1.0 / (1 << SUB_BITS) as f64 + 1e-9);
            } else {
                assert_eq!(rep, v);
            }
        }
    }

    #[test]
    fn max_is_exact_even_when_bucketed() {
        let mut h = LatencyHistogram::new();
        h.record(123_457);
        assert_eq!(h.max(), 123_457);
        assert!(h.quantile(1.0) <= 123_457);
    }
}

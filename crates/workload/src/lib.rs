//! # lps-workload
//!
//! The declarative mixed-workload harness: reproducible load tests for
//! the sampler service, described in data instead of code. Three layers,
//! strictly stacked:
//!
//! * [`spec`] — a **TOML workload-description format** parsed into a
//!   typed [`WorkloadSpec`]: structure mix with weights, dimension,
//!   update distribution, read/write ratio, tenant count, and the ramp
//!   schedule. Parsing is total in the `persist::DecodeError` spirit —
//!   no input panics, every malformed spec maps to a typed [`SpecError`].
//! * [`generators`] — a library of **named, seeded, reusable stream
//!   generators** (`uniform`, `zipf`, `turnstile`, `duplicates`,
//!   `collision`), each deterministic from a single `u64` seed and
//!   **chunk-boundary independent**: drawing 10 updates then 90 yields
//!   the same stream as drawing 100 at once (property-tested).
//! * [`driver`] — a **ramping open-loop load driver**: each step offers
//!   a fixed rate with precomputed per-request start times and measures
//!   latency from the *scheduled* start (coordinated-omission-free),
//!   recording log-bucketed p50/p99/p999 per step ([`hist`]) and
//!   stepping the rate up until the target misses it — saturation —
//!   yielding a `sustainable_max_rps`. Both load targets sit behind one
//!   [`WorkloadTarget`] trait ([`target`]): the in-process engine core
//!   and the socket service, so the gap between them is itself measured.
//!
//! The `experiments -- workload <spec.toml>` subcommand (crate
//! `lps-bench`) runs a spec against both targets and stamps the results
//! into the `BENCH_samplers.json` artifact; named specs ship under
//! `crates/workload/specs/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod generators;
pub mod hist;
pub mod spec;
pub mod target;

pub use driver::{run_workload, StepReport, WorkloadOutcome, SUSTAIN_FRACTION};
pub use generators::{build_generator, UpdateGenerator};
pub use hist::LatencyHistogram;
pub use spec::{GeneratorSpec, MixEntry, RampSpec, SpecError, WorkloadSpec};
pub use target::{EngineTarget, SocketTarget, WorkloadTarget};

//! The declarative workload-description format: a TOML subset parsed into
//! a typed [`WorkloadSpec`].
//!
//! The environment vendors no TOML crate, so the parser here is
//! hand-rolled in the same spirit as the repo's hand-rolled JSON writer:
//! a deliberately small, line-oriented subset — `[table]` /
//! `[[array-of-tables]]` headers, `key = value` pairs, `#` comments, and
//! string / integer / float / boolean values. That subset covers every
//! shipped spec under `crates/workload/specs/`; anything outside it is a
//! typed [`SpecError`], never a panic — the `persist::DecodeError`
//! discipline applied to configuration.
//!
//! ## Spec layout
//!
//! ```toml
//! [workload]
//! name = "zipf_skew"        # [a-z0-9_-]+ — stamped into BENCH_samplers.json
//! dimension = 65536         # coordinate space [0, n)
//! seed = 48879              # single u64 master seed for ALL randomness
//! read_ratio = 0.2          # fraction of requests that are reads
//! tenants = 4               # registry tenants fed alongside the catalog
//! batch = 64                # updates per write request
//!
//! [generator]
//! kind = "zipf"             # uniform | zipf | turnstile | duplicates | collision
//! alpha = 1.2               # generator-specific knobs
//!
//! [ramp]
//! initial_rps = 200
//! increment_rps = 200
//! max_rps = 4000
//! step_duration_ms = 400
//!
//! [[mix]]                   # weighted structure mix for the read traffic
//! structure = "count_min"
//! weight = 3
//!
//! [[mix]]
//! structure = "l0_sampler"
//! weight = 1
//! ```

use std::path::Path;

use lps_service::CATALOG_STRUCTURES;

/// A parse or validation failure. Total: every malformed spec maps to
/// exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec file could not be read at all.
    Unreadable {
        /// The path that failed.
        path: String,
        /// The I/O error text.
        detail: String,
    },
    /// A line the TOML subset cannot parse.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `key = value` pair outside any `[section]`.
    KeyOutsideSection {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// A section this format does not know.
    UnknownSection {
        /// The section name as written.
        section: String,
    },
    /// A key this section does not know.
    UnknownKey {
        /// The section the key appeared in.
        section: String,
        /// The offending key.
        key: String,
    },
    /// A required section or key is absent.
    Missing {
        /// `section` or `section.key` that is required.
        what: String,
    },
    /// A section that must appear exactly once appeared again.
    Duplicate {
        /// The section (or key) that repeated.
        what: String,
    },
    /// A value parsed but fails its domain check.
    InvalidValue {
        /// `section.key` of the value.
        key: String,
        /// Why it is out of domain.
        message: String,
    },
    /// `[[mix]]` names a structure outside the service catalog.
    UnknownStructure {
        /// The name as written.
        name: String,
    },
    /// `[generator] kind` names no known generator.
    UnknownGenerator {
        /// The kind as written.
        name: String,
    },
    /// `read_ratio > 0` but no structure in the mix answers live reads.
    NoReadableStructure,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Unreadable { path, detail } => {
                write!(f, "cannot read workload spec {path}: {detail}")
            }
            SpecError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            SpecError::KeyOutsideSection { line, key } => {
                write!(f, "line {line}: key '{key}' appears outside any [section]")
            }
            SpecError::UnknownSection { section } => {
                write!(f, "unknown section [{section}] (expected workload, generator, ramp, mix)")
            }
            SpecError::UnknownKey { section, key } => {
                write!(f, "unknown key '{key}' in section [{section}]")
            }
            SpecError::Missing { what } => write!(f, "missing required {what}"),
            SpecError::Duplicate { what } => write!(f, "{what} must appear exactly once"),
            SpecError::InvalidValue { key, message } => write!(f, "invalid {key}: {message}"),
            SpecError::UnknownStructure { name } => {
                write!(f, "mix structure '{name}' is not in the service catalog")
            }
            SpecError::UnknownGenerator { name } => {
                write!(
                    f,
                    "unknown generator kind '{name}' (expected uniform, zipf, turnstile, \
                     duplicates, collision)"
                )
            }
            SpecError::NoReadableStructure => {
                write!(
                    f,
                    "read_ratio > 0 requires at least one mix structure that answers live \
                     queries (every catalog structure except 'ams')"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The named update distribution a workload draws from. Every generator is
/// deterministic from the spec's single `seed` and chunk-boundary
/// independent (see [`crate::generators`]).
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorSpec {
    /// Uniform keys, insert-biased signed unit-ish deltas.
    Uniform,
    /// Zipf-skewed keys with exponent `alpha`.
    Zipf {
        /// Skew exponent (`> 0`; higher is more skewed).
        alpha: f64,
    },
    /// Deletion-heavy turnstile phases: grow, then drain the live mass
    /// back to near zero, repeatedly.
    Turnstile {
        /// When true, no coordinate ever goes below zero (the strict
        /// turnstile model); when false, occasional blind deletes may
        /// drive coordinates negative (general model).
        strict: bool,
    },
    /// Duplicate-rich traffic over a small churning key pool.
    Duplicates {
        /// Number of distinct keys in the pool.
        distinct: u64,
    },
    /// Adversarial near-collisions: bursts of adjacent keys around
    /// shifting hot centers.
    Collision {
        /// Width of the key cluster around each center.
        spread: u64,
    },
}

impl GeneratorSpec {
    /// The spec-file `kind` string.
    pub fn kind(&self) -> &'static str {
        match self {
            GeneratorSpec::Uniform => "uniform",
            GeneratorSpec::Zipf { .. } => "zipf",
            GeneratorSpec::Turnstile { .. } => "turnstile",
            GeneratorSpec::Duplicates { .. } => "duplicates",
            GeneratorSpec::Collision { .. } => "collision",
        }
    }
}

/// One weighted entry of the structure mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// Catalog structure name (see [`CATALOG_STRUCTURES`]).
    pub structure: String,
    /// The structure's `Persist` wire tag.
    pub tag: u16,
    /// Relative weight in the read-traffic mix.
    pub weight: u32,
}

impl MixEntry {
    /// Whether this structure answers live (snapshot-served) queries.
    /// Every catalog structure does except AMS, whose only query kind is
    /// the ingest-linearized digest.
    pub fn readable(&self) -> bool {
        self.structure != "ams"
    }
}

/// The ramping load-search schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RampSpec {
    /// Request rate of the first step.
    pub initial_rps: u32,
    /// Rate increase per step.
    pub increment_rps: u32,
    /// Rate cap: the search stops here even without saturation.
    pub max_rps: u32,
    /// Wall-clock duration of each step.
    pub step_duration_ms: u64,
}

/// A fully validated workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Scenario name (`[a-z0-9_-]+`), stamped into the BENCH artifact.
    pub name: String,
    /// Coordinate-space dimension of the served catalog.
    pub dimension: u64,
    /// The single master seed every generator and traffic decision is
    /// derived from.
    pub seed: u64,
    /// Fraction of requests that are reads (`0.0..=1.0`).
    pub read_ratio: f64,
    /// Registry tenants fed alongside the shared catalog (0 = catalog
    /// only; otherwise writes split between the catalog and tenants
    /// `1..=tenants`).
    pub tenants: u64,
    /// Updates per write request.
    pub batch: usize,
    /// The update distribution.
    pub generator: GeneratorSpec,
    /// Weighted structure mix for the read traffic.
    pub mix: Vec<MixEntry>,
    /// The ramp schedule.
    pub ramp: RampSpec,
}

impl WorkloadSpec {
    /// Read and parse a spec file.
    pub fn load(path: &Path) -> Result<WorkloadSpec, SpecError> {
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Unreadable {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        WorkloadSpec::parse(&text)
    }

    /// Parse a spec from TOML text.
    pub fn parse(text: &str) -> Result<WorkloadSpec, SpecError> {
        build_spec(parse_toml(text)?)
    }

    /// The mix entries that answer live queries (the read-traffic pool).
    pub fn readable_mix(&self) -> Vec<&MixEntry> {
        self.mix.iter().filter(|e| e.readable()).collect()
    }
}

// ---------------------------------------------------------------------------
// TOML-subset parsing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

#[derive(Debug)]
struct Section {
    name: String,
    /// True for `[[name]]` array-of-tables headers.
    array: bool,
    entries: Vec<(String, Value, usize)>,
}

/// Strip a `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line: usize) -> Result<Value, SpecError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(SpecError::Syntax { line, message: "missing value after '='".into() });
    }
    if let Some(rest) = raw.strip_prefix('"') {
        return match rest.strip_suffix('"') {
            Some(inner) if !inner.contains('"') => Ok(Value::Str(inner.to_string())),
            _ => Err(SpecError::Syntax { line, message: format!("unterminated string {raw}") }),
        };
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let numeric: String = raw.chars().filter(|&c| c != '_').collect();
    if numeric.contains(['.', 'e', 'E']) {
        return numeric
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| SpecError::Syntax { line, message: format!("'{raw}' is not a float") });
    }
    numeric.parse::<i64>().map(Value::Int).map_err(|_| SpecError::Syntax {
        line,
        message: format!("'{raw}' is not a value (string, integer, float, or boolean)"),
    })
}

fn parse_toml(text: &str) -> Result<Vec<Section>, SpecError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header.strip_suffix("]]").ok_or_else(|| SpecError::Syntax {
                line: line_no,
                message: "unterminated [[section]] header".into(),
            })?;
            sections.push(Section { name: name.trim().to_string(), array: true, entries: vec![] });
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let name = header.strip_suffix(']').ok_or_else(|| SpecError::Syntax {
                line: line_no,
                message: "unterminated [section] header".into(),
            })?;
            sections.push(Section { name: name.trim().to_string(), array: false, entries: vec![] });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SpecError::Syntax {
                line: line_no,
                message: format!("expected 'key = value' or a [section] header, found '{line}'"),
            });
        };
        let key = key.trim().to_string();
        let value = parse_value(value, line_no)?;
        match sections.last_mut() {
            Some(section) => section.entries.push((key, value, line_no)),
            None => return Err(SpecError::KeyOutsideSection { line: line_no, key }),
        }
    }
    Ok(sections)
}

// ---------------------------------------------------------------------------
// Typed extraction
// ---------------------------------------------------------------------------

/// Accessor over one section's entries with typed, totally-checked reads.
struct Table<'a> {
    section: &'a str,
    entries: &'a [(String, Value, usize)],
}

impl<'a> Table<'a> {
    fn get(&self, key: &str) -> Option<&'a Value> {
        self.entries.iter().find(|(k, _, _)| k == key).map(|(_, v, _)| v)
    }

    fn check_known(&self, known: &[&str]) -> Result<(), SpecError> {
        for (k, _, _) in self.entries {
            if !known.contains(&k.as_str()) {
                return Err(SpecError::UnknownKey {
                    section: self.section.to_string(),
                    key: k.clone(),
                });
            }
        }
        Ok(())
    }

    fn path(&self, key: &str) -> String {
        format!("{}.{key}", self.section)
    }

    fn string(&self, key: &str) -> Result<String, SpecError> {
        match self.get(key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            Some(other) => Err(SpecError::InvalidValue {
                key: self.path(key),
                message: format!("expected a string, found a {}", other.type_name()),
            }),
            None => Err(SpecError::Missing { what: self.path(key) }),
        }
    }

    fn u64_req(&self, key: &str) -> Result<u64, SpecError> {
        match self.get(key) {
            Some(value) => self.as_u64(key, value),
            None => Err(SpecError::Missing { what: self.path(key) }),
        }
    }

    fn u64_opt(&self, key: &str, default: u64) -> Result<u64, SpecError> {
        match self.get(key) {
            Some(value) => self.as_u64(key, value),
            None => Ok(default),
        }
    }

    fn as_u64(&self, key: &str, value: &Value) -> Result<u64, SpecError> {
        match value {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::Int(i) => Err(SpecError::InvalidValue {
                key: self.path(key),
                message: format!("must be non-negative, found {i}"),
            }),
            other => Err(SpecError::InvalidValue {
                key: self.path(key),
                message: format!("expected an integer, found a {}", other.type_name()),
            }),
        }
    }

    fn f64_opt(&self, key: &str, default: f64) -> Result<f64, SpecError> {
        match self.get(key) {
            Some(Value::Float(v)) => Ok(*v),
            Some(Value::Int(i)) => Ok(*i as f64),
            Some(other) => Err(SpecError::InvalidValue {
                key: self.path(key),
                message: format!("expected a number, found a {}", other.type_name()),
            }),
            None => Ok(default),
        }
    }

    fn bool_opt(&self, key: &str, default: bool) -> Result<bool, SpecError> {
        match self.get(key) {
            Some(Value::Bool(b)) => Ok(*b),
            Some(other) => Err(SpecError::InvalidValue {
                key: self.path(key),
                message: format!("expected a boolean, found a {}", other.type_name()),
            }),
            None => Ok(default),
        }
    }
}

fn single_table<'a>(sections: &'a [Section], name: &'a str) -> Result<Table<'a>, SpecError> {
    let mut found = None;
    for s in sections.iter().filter(|s| s.name == name) {
        if s.array {
            return Err(SpecError::InvalidValue {
                key: name.to_string(),
                message: format!("[{name}] is a table, not an array of tables"),
            });
        }
        if found.is_some() {
            return Err(SpecError::Duplicate { what: format!("section [{name}]") });
        }
        found = Some(Table { section: name, entries: &s.entries });
    }
    found.ok_or_else(|| SpecError::Missing { what: format!("section [{name}]") })
}

fn build_generator(table: &Table<'_>) -> Result<GeneratorSpec, SpecError> {
    let kind = table.string("kind")?;
    let spec = match kind.as_str() {
        "uniform" => {
            table.check_known(&["kind"])?;
            GeneratorSpec::Uniform
        }
        "zipf" => {
            table.check_known(&["kind", "alpha"])?;
            let alpha = table.f64_opt("alpha", 1.1)?;
            if !(alpha > 0.0 && alpha.is_finite()) {
                return Err(SpecError::InvalidValue {
                    key: "generator.alpha".into(),
                    message: format!("must be a positive finite exponent, found {alpha}"),
                });
            }
            GeneratorSpec::Zipf { alpha }
        }
        "turnstile" => {
            table.check_known(&["kind", "strict"])?;
            GeneratorSpec::Turnstile { strict: table.bool_opt("strict", true)? }
        }
        "duplicates" => {
            table.check_known(&["kind", "distinct"])?;
            let distinct = table.u64_opt("distinct", 64)?;
            if distinct == 0 {
                return Err(SpecError::InvalidValue {
                    key: "generator.distinct".into(),
                    message: "pool must hold at least one key".into(),
                });
            }
            GeneratorSpec::Duplicates { distinct }
        }
        "collision" => {
            table.check_known(&["kind", "spread"])?;
            let spread = table.u64_opt("spread", 8)?;
            if spread == 0 {
                return Err(SpecError::InvalidValue {
                    key: "generator.spread".into(),
                    message: "cluster spread must be at least 1".into(),
                });
            }
            GeneratorSpec::Collision { spread }
        }
        _ => return Err(SpecError::UnknownGenerator { name: kind }),
    };
    Ok(spec)
}

fn build_spec(sections: Vec<Section>) -> Result<WorkloadSpec, SpecError> {
    for s in &sections {
        if !matches!(s.name.as_str(), "workload" | "generator" | "ramp" | "mix") {
            return Err(SpecError::UnknownSection { section: s.name.clone() });
        }
    }

    let workload = single_table(&sections, "workload")?;
    workload.check_known(&["name", "dimension", "seed", "read_ratio", "tenants", "batch"])?;
    let name = workload.string("name")?;
    if name.is_empty()
        || !name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_-".contains(c))
    {
        return Err(SpecError::InvalidValue {
            key: "workload.name".into(),
            message: format!("'{name}' must be non-empty and match [a-z0-9_-]+"),
        });
    }
    let dimension = workload.u64_req("dimension")?;
    if dimension == 0 {
        return Err(SpecError::InvalidValue {
            key: "workload.dimension".into(),
            message: "must be at least 1".into(),
        });
    }
    let seed = workload.u64_req("seed")?;
    let read_ratio = workload.f64_opt("read_ratio", 0.0)?;
    if !(0.0..=1.0).contains(&read_ratio) {
        return Err(SpecError::InvalidValue {
            key: "workload.read_ratio".into(),
            message: format!("must be in [0, 1], found {read_ratio}"),
        });
    }
    let tenants = workload.u64_opt("tenants", 0)?;
    let batch = workload.u64_opt("batch", 64)?;
    if batch == 0 {
        return Err(SpecError::InvalidValue {
            key: "workload.batch".into(),
            message: "write requests must carry at least one update".into(),
        });
    }

    let generator = build_generator(&single_table(&sections, "generator")?)?;

    let ramp_table = single_table(&sections, "ramp")?;
    ramp_table.check_known(&["initial_rps", "increment_rps", "max_rps", "step_duration_ms"])?;
    let ramp = RampSpec {
        initial_rps: ramp_table.u64_req("initial_rps")? as u32,
        increment_rps: ramp_table.u64_req("increment_rps")? as u32,
        max_rps: ramp_table.u64_req("max_rps")? as u32,
        step_duration_ms: ramp_table.u64_req("step_duration_ms")?,
    };
    if ramp.initial_rps == 0 || ramp.increment_rps == 0 {
        return Err(SpecError::InvalidValue {
            key: "ramp.initial_rps".into(),
            message: "initial_rps and increment_rps must be at least 1".into(),
        });
    }
    if ramp.max_rps < ramp.initial_rps {
        return Err(SpecError::InvalidValue {
            key: "ramp.max_rps".into(),
            message: format!("must be at least initial_rps ({})", ramp.initial_rps),
        });
    }
    if ramp.step_duration_ms == 0 {
        return Err(SpecError::InvalidValue {
            key: "ramp.step_duration_ms".into(),
            message: "steps must last at least 1 ms".into(),
        });
    }

    let mut mix = Vec::new();
    for s in sections.iter().filter(|s| s.name == "mix") {
        if !s.array {
            return Err(SpecError::InvalidValue {
                key: "mix".into(),
                message: "mix entries use [[mix]] array-of-tables headers".into(),
            });
        }
        let table = Table { section: "mix", entries: &s.entries };
        table.check_known(&["structure", "weight"])?;
        let structure = table.string("structure")?;
        let Some(&(_, tag)) = CATALOG_STRUCTURES.iter().find(|(n, _)| *n == structure) else {
            return Err(SpecError::UnknownStructure { name: structure });
        };
        let weight = table.u64_opt("weight", 1)? as u32;
        if weight == 0 {
            return Err(SpecError::InvalidValue {
                key: "mix.weight".into(),
                message: "weights must be at least 1".into(),
            });
        }
        mix.push(MixEntry { structure, tag, weight });
    }
    if mix.is_empty() {
        return Err(SpecError::Missing { what: "at least one [[mix]] entry".into() });
    }

    let spec = WorkloadSpec {
        name,
        dimension,
        seed,
        read_ratio,
        tenants,
        batch: batch as usize,
        generator,
        mix,
        ramp,
    };
    if spec.read_ratio > 0.0 && spec.readable_mix().is_empty() {
        return Err(SpecError::NoReadableStructure);
    }
    Ok(spec)
}

//! The two systems a workload can drive, behind one trait.
//!
//! [`WorkloadTarget`] abstracts "something that accepts update batches
//! and answers live queries" so the ramping driver measures the
//! in-process engine and the socket service with the same code path —
//! the difference between the two *is* the measurement.

use std::net::{TcpStream, ToSocketAddrs};

use lps_service::{
    Frame, Query, Reply, ServiceClient, ServiceConfig, ServiceCore, ServiceError, SnapshotHandle,
};
use lps_stream::Update;

/// A load-test target: a sink for update batches and a live-query server.
pub trait WorkloadTarget {
    /// Short name stamped into reports (`"engine"` / `"service"`).
    fn name(&self) -> &'static str;

    /// Apply one batch of updates for `tenant` (0 = the shared catalog).
    fn write(&mut self, tenant: u64, updates: &[Update]) -> Result<(), ServiceError>;

    /// Answer one live query, discarding the reply's content (the driver
    /// measures latency, not answers — answer *quality* is covered by the
    /// service and bench test suites).
    fn read(&mut self, query: Query) -> Result<(), ServiceError>;
}

/// The in-process target: a [`ServiceCore`] driven directly, with reads
/// served from its published snapshots — the service's data path minus
/// the socket, framing, and thread hand-off.
pub struct EngineTarget {
    core: ServiceCore,
    snapshots: SnapshotHandle,
}

impl EngineTarget {
    /// Build a standard catalog core from `config`.
    pub fn new(config: &ServiceConfig) -> Self {
        let core = ServiceCore::new(config);
        let snapshots = core.snapshot_handle();
        EngineTarget { core, snapshots }
    }

    /// Total updates the core accepted (for throughput accounting).
    pub fn accepted(&self) -> u64 {
        self.core.accepted()
    }
}

impl WorkloadTarget for EngineTarget {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn write(&mut self, tenant: u64, updates: &[Update]) -> Result<(), ServiceError> {
        match self.core.apply(Frame::UpdateBatch { tenant, updates: updates.to_vec() })? {
            Frame::Reply(Reply::Ack { .. }) => Ok(()),
            other => Err(ServiceError::Proto(lps_service::ProtoError::Malformed {
                context: unexpected_reply(&other),
            })),
        }
    }

    fn read(&mut self, query: Query) -> Result<(), ServiceError> {
        self.snapshots.serve(&query).map(|_| ())
    }
}

/// The socket target: a [`ServiceClient`] over TCP, measuring the full
/// stack — framing, checksums, the server's ingest queue, and snapshot
/// reads on the connection thread.
pub struct SocketTarget {
    client: ServiceClient<TcpStream>,
}

impl SocketTarget {
    /// Connect and handshake (optionally authenticating with `token`).
    pub fn connect<A: ToSocketAddrs>(addr: A, token: Option<&str>) -> Result<Self, ServiceError> {
        let client = match token {
            Some(t) => ServiceClient::connect_tcp_with_token(addr, t)?,
            None => ServiceClient::connect_tcp(addr)?,
        };
        Ok(SocketTarget { client })
    }

    /// Send the shutdown frame and recover the server's accepted count.
    pub fn shutdown(self) -> Result<u64, ServiceError> {
        self.client.shutdown()
    }
}

impl WorkloadTarget for SocketTarget {
    fn name(&self) -> &'static str {
        "service"
    }

    fn write(&mut self, tenant: u64, updates: &[Update]) -> Result<(), ServiceError> {
        self.client.send_updates(tenant, updates).map(|_| ())
    }

    fn read(&mut self, query: Query) -> Result<(), ServiceError> {
        self.client.query(query).map(|_| ())
    }
}

fn unexpected_reply(_frame: &Frame) -> &'static str {
    "update batch was not acknowledged"
}

//! End-to-end driver runs against both targets: the in-process engine
//! core and the socket service over loopback — the same dual-target path
//! the `experiments -- workload` subcommand exercises, shrunk to test
//! scale. Rates here are tiny so even a loaded CI host sustains them;
//! the assertions are about the *shape* of the outcome (steps, counts,
//! percentiles), never about this machine's absolute throughput.

use lps_service::{RunningServer, ServiceConfig};
use lps_workload::{run_workload, EngineTarget, SocketTarget, WorkloadSpec, SUSTAIN_FRACTION};

const TINY: &str = r#"
[workload]
name = "tiny"
dimension = 512
seed = 11
read_ratio = 0.3
tenants = 2
batch = 8

[generator]
kind = "turnstile"
strict = true

[ramp]
initial_rps = 100
increment_rps = 100
max_rps = 200
step_duration_ms = 80

[[mix]]
structure = "count_min"
weight = 2

[[mix]]
structure = "sparse_recovery"
weight = 1

[[mix]]
structure = "l0_sampler"
weight = 1
"#;

fn config(spec: &WorkloadSpec) -> ServiceConfig {
    ServiceConfig::new(spec.dimension, spec.seed).publish_interval(64)
}

#[test]
fn the_driver_ramps_the_engine_target_and_reports_every_step() {
    let spec = WorkloadSpec::parse(TINY).expect("tiny spec");
    let mut target = EngineTarget::new(&config(&spec));
    let outcome = run_workload(&spec, &mut target).expect("engine run");

    assert_eq!(outcome.spec_name, "tiny");
    assert_eq!(outcome.target, "engine");
    assert!(!outcome.steps.is_empty());
    // Steps ramp by increment_rps from initial_rps; only the last step
    // may have missed its rate.
    for (i, step) in outcome.steps.iter().enumerate() {
        assert_eq!(step.target_rps, 100 + 100 * i as u32);
        assert_eq!(step.offered, step.target_rps as u64 * 80 / 1_000);
        assert!(step.achieved_rps > 0.0);
        assert!(step.p50_us <= step.p99_us && step.p99_us <= step.p999_us);
        assert!(step.p999_us <= step.max_us + 1e-9);
        if i + 1 < outcome.steps.len() {
            assert!(step.met, "an unmet step must end the ramp");
        }
    }
    let offered: u64 = outcome.steps.iter().map(|s| s.offered).sum();
    assert_eq!(outcome.total_requests, offered);
    // Writes reached the core: the engine accepted this run's updates.
    assert_eq!(target.accepted(), outcome.total_updates);
    assert!(outcome.total_updates > 0, "no writes were issued");

    // Saturation bookkeeping: saturated ⟺ the last step missed.
    let last = outcome.steps.last().unwrap();
    assert_eq!(outcome.saturated, !last.met);
    if last.met {
        assert!(outcome.sustainable_max_rps >= SUSTAIN_FRACTION * last.target_rps as f64);
    }
}

#[test]
fn the_same_spec_drives_the_socket_service_over_loopback() {
    let spec = WorkloadSpec::parse(TINY).expect("tiny spec");
    let server = RunningServer::bind_tcp("127.0.0.1:0", config(&spec)).expect("bind");
    let addr = server.local_addr().expect("tcp addr");

    let mut target = SocketTarget::connect(addr, None).expect("connect");
    let outcome = run_workload(&spec, &mut target).expect("service run");
    let accepted = target.shutdown().expect("shutdown");
    server.join();

    assert_eq!(outcome.target, "service");
    assert!(!outcome.steps.is_empty());
    assert_eq!(accepted, outcome.total_updates, "server-side accepted count must match");
    assert!(outcome.total_requests > 0);
}

#[test]
fn the_socket_target_authenticates_when_the_server_demands_a_token() {
    let spec = WorkloadSpec::parse(TINY).expect("tiny spec");
    let server = RunningServer::bind_tcp("127.0.0.1:0", config(&spec).auth_token("workload-smoke"))
        .expect("bind");
    let addr = server.local_addr().expect("tcp addr");

    assert!(SocketTarget::connect(addr, None).is_err(), "tokenless connect must be rejected");
    let mut target = SocketTarget::connect(addr, Some("workload-smoke")).expect("authed connect");
    let outcome = run_workload(&spec, &mut target).expect("authed run");
    assert!(outcome.total_requests > 0);
    target.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn identical_runs_offer_identical_request_sequences() {
    // The driver derives every traffic decision from the spec seed, so
    // two engine runs write the same updates (their cores agree on the
    // accepted count and on every structure's ingested stream).
    let spec = WorkloadSpec::parse(TINY).expect("tiny spec");
    let mut a = EngineTarget::new(&config(&spec));
    let mut b = EngineTarget::new(&config(&spec));
    let out_a = run_workload(&spec, &mut a).expect("run a");
    let out_b = run_workload(&spec, &mut b).expect("run b");
    // Wall-clock (and thus step counts at saturation) may differ, but as
    // long as both ramps covered the same steps the streams match.
    if out_a.steps.len() == out_b.steps.len() {
        assert_eq!(out_a.total_updates, out_b.total_updates);
        assert_eq!(a.accepted(), b.accepted());
    }
}

//! The two laws every named generator must obey:
//!
//! * **Chunk-boundary independence** — drawing the stream in chunks of
//!   any size yields exactly the stream drawn all at once, because all
//!   generator state advances per update, never per chunk.
//! * **Determinism** — the stream is a pure function of the single seed.
//!
//! Plus the strict-turnstile contract: when the spec forbids it, no
//! coordinate ever dips below zero at any prefix of the stream.

use lps_workload::{build_generator, GeneratorSpec, UpdateGenerator};
use proptest::prelude::*;

/// All five named kinds, selected by index so the vendored proptest's
/// primitive strategies can pick one.
fn kind(choice: u8) -> GeneratorSpec {
    match choice % 5 {
        0 => GeneratorSpec::Uniform,
        1 => GeneratorSpec::Zipf { alpha: 1.2 },
        2 => GeneratorSpec::Turnstile { strict: choice.is_multiple_of(2) },
        3 => GeneratorSpec::Duplicates { distinct: 16 + (choice as u64 % 48) },
        _ => GeneratorSpec::Collision { spread: 1 + (choice as u64 % 16) },
    }
}

fn drain(gen: &mut dyn UpdateGenerator, n: usize) -> Vec<(u64, i64)> {
    (0..n)
        .map(|_| {
            let u = gen.next_update();
            (u.index, u.delta)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn every_generator_is_chunk_boundary_independent(
        choice in 0u8..=255,
        seed in any::<u64>(),
        dimension in 16u64..10_000,
        chunk in 1usize..97,
    ) {
        let spec = kind(choice);
        let total = 1_500usize;

        let mut whole = build_generator(&spec, dimension, seed);
        let at_once = drain(whole.as_mut(), total);

        // Same stream drawn through fill() in arbitrary-size chunks.
        let mut chunked = build_generator(&spec, dimension, seed);
        let mut piecewise = Vec::with_capacity(total);
        let mut buf = vec![lps_stream::Update { index: 0, delta: 0 }; chunk];
        while piecewise.len() < total {
            let take = chunk.min(total - piecewise.len());
            chunked.fill(&mut buf[..take]);
            piecewise.extend(buf[..take].iter().map(|u| (u.index, u.delta)));
        }

        prop_assert_eq!(&at_once, &piecewise,
            "kind {} diverged at some chunk boundary (chunk = {})", spec.kind(), chunk);
    }

    fn every_generator_is_deterministic_in_its_seed(
        choice in 0u8..=255,
        seed in any::<u64>(),
        dimension in 16u64..10_000,
    ) {
        let spec = kind(choice);
        let a = drain(build_generator(&spec, dimension, seed).as_mut(), 600);
        let b = drain(build_generator(&spec, dimension, seed).as_mut(), 600);
        prop_assert_eq!(a, b);
    }

    fn every_generator_stays_inside_its_dimension(
        choice in 0u8..=255,
        seed in any::<u64>(),
        dimension in 1u64..5_000,
    ) {
        let spec = kind(choice);
        let mut gen = build_generator(&spec, dimension, seed);
        for _ in 0..2_000 {
            let u = gen.next_update();
            prop_assert!(u.index < dimension, "index {} escaped [0, {})", u.index, dimension);
            prop_assert!(u.delta != 0, "zero deltas are not turnstile updates");
        }
    }

    fn strict_turnstile_never_goes_below_zero(
        seed in any::<u64>(),
        dimension in 8u64..2_000,
    ) {
        let spec = GeneratorSpec::Turnstile { strict: true };
        let mut gen = build_generator(&spec, dimension, seed);
        let mut counts = vec![0i64; dimension as usize];
        for step in 0..6_000 {
            let u = gen.next_update();
            counts[u.index as usize] += u.delta;
            prop_assert!(
                counts[u.index as usize] >= 0,
                "coordinate {} fell to {} at step {step}", u.index, counts[u.index as usize]
            );
        }
    }

    fn turnstile_actually_churns_through_deletion_phases(
        seed in any::<u64>(),
    ) {
        // The deletion-heavy generator must repeatedly drain its mass to
        // near zero: over a long run, deletions are a large fraction of
        // traffic and the live mass returns to the low-water mark.
        let spec = GeneratorSpec::Turnstile { strict: true };
        let mut gen = build_generator(&spec, 4_096, seed);
        let mut mass = 0i64;
        let mut deletes = 0u64;
        let mut dipped = 0u64;
        let total = 20_000;
        for _ in 0..total {
            let u = gen.next_update();
            mass += u.delta;
            if u.delta < 0 {
                deletes += 1;
            }
            if mass <= 8 {
                dipped += 1;
            }
        }
        prop_assert!(deletes > total / 4, "only {deletes} deletions in {total} updates");
        prop_assert!(dipped > 0, "live mass never returned near zero");
    }
}

#[test]
fn duplicates_generator_is_duplicate_rich() {
    let spec = GeneratorSpec::Duplicates { distinct: 32 };
    let mut gen = build_generator(&spec, 1 << 20, 99);
    let stream = drain(gen.as_mut(), 4_000);
    let distinct: std::collections::BTreeSet<u64> = stream.iter().map(|&(i, _)| i).collect();
    // 4000 updates over a ~32-key churning pool: far fewer distinct keys
    // than updates, far more than one.
    assert!(distinct.len() < 200, "pool leaked: {} distinct keys", distinct.len());
    assert!(distinct.len() >= 16, "pool collapsed: {} distinct keys", distinct.len());
}

#[test]
fn collision_generator_clusters_its_keys() {
    let spec = GeneratorSpec::Collision { spread: 8 };
    let mut gen = build_generator(&spec, 1 << 20, 7);
    // The first burst window (the center moves every 256 draws) keeps
    // every key within `spread` of one hot center.
    let stream = drain(gen.as_mut(), 200);
    let min = stream.iter().map(|&(i, _)| i).min().unwrap();
    let max = stream.iter().map(|&(i, _)| i).max().unwrap();
    assert!(max - min < 8, "burst spanned [{min}, {max}], wider than the spread");
}

#[test]
fn zipf_generator_skews_toward_low_ranks() {
    let spec = GeneratorSpec::Zipf { alpha: 1.3 };
    let mut gen = build_generator(&spec, 1 << 16, 1234);
    let stream = drain(gen.as_mut(), 8_000);
    let low = stream.iter().filter(|&&(i, _)| i < 16).count();
    assert!(low > stream.len() / 3, "only {low}/8000 updates hit the 16 hottest ranks");
}

//! The spec format is total: every shipped spec parses, and every class
//! of malformed input maps to its typed [`SpecError`] — never a panic.

use std::path::Path;

use lps_workload::{GeneratorSpec, SpecError, WorkloadSpec};

/// A minimal valid spec to mutate from.
const BASE: &str = r#"
[workload]
name = "base"
dimension = 1024
seed = 7
read_ratio = 0.5
tenants = 2
batch = 8

[generator]
kind = "uniform"

[ramp]
initial_rps = 100
increment_rps = 100
max_rps = 300
step_duration_ms = 50

[[mix]]
structure = "count_min"
weight = 2

[[mix]]
structure = "l0_sampler"
"#;

#[test]
fn the_base_spec_parses() {
    let spec = WorkloadSpec::parse(BASE).expect("base spec");
    assert_eq!(spec.name, "base");
    assert_eq!(spec.dimension, 1024);
    assert_eq!(spec.generator, GeneratorSpec::Uniform);
    assert_eq!(spec.mix.len(), 2);
    assert_eq!(spec.mix[0].weight, 2);
    // weight defaults to 1 when omitted
    assert_eq!(spec.mix[1].weight, 1);
    assert_eq!(spec.ramp.max_rps, 300);
}

#[test]
fn every_shipped_spec_parses_and_keeps_its_file_stem_as_name() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("specs dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let spec = WorkloadSpec::load(&path)
            .unwrap_or_else(|e| panic!("shipped spec {} failed: {e}", path.display()));
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("utf-8 stem");
        assert_eq!(spec.name, stem, "spec name must match its file stem");
        seen += 1;
    }
    assert!(seen >= 4, "expected the 3 named scenarios plus smoke, found {seen}");
}

#[test]
fn all_generator_kinds_parse() {
    for (snippet, expected) in [
        ("kind = \"uniform\"", GeneratorSpec::Uniform),
        ("kind = \"zipf\"\nalpha = 1.5", GeneratorSpec::Zipf { alpha: 1.5 }),
        ("kind = \"turnstile\"\nstrict = false", GeneratorSpec::Turnstile { strict: false }),
        ("kind = \"turnstile\"", GeneratorSpec::Turnstile { strict: true }),
        ("kind = \"duplicates\"\ndistinct = 9", GeneratorSpec::Duplicates { distinct: 9 }),
        ("kind = \"collision\"\nspread = 4", GeneratorSpec::Collision { spread: 4 }),
    ] {
        let text = BASE.replace("kind = \"uniform\"", snippet);
        let spec = WorkloadSpec::parse(&text).expect(snippet);
        assert_eq!(spec.generator, expected, "{snippet}");
    }
}

fn expect_err(text: &str) -> SpecError {
    WorkloadSpec::parse(text).expect_err("spec should be rejected")
}

#[test]
fn missing_sections_and_keys_are_typed() {
    let no_ramp = BASE.replace("[ramp]", "[workload]");
    assert!(matches!(expect_err(&no_ramp), SpecError::Duplicate { .. }));

    // Dropping the [generator] header leaves its `kind` key inside the
    // preceding section, which rejects it as unknown there.
    let no_generator: String =
        BASE.lines().filter(|l| !l.contains("[generator]")).collect::<Vec<_>>().join("\n");
    assert_eq!(
        expect_err(&no_generator),
        SpecError::UnknownKey { section: "workload".into(), key: "kind".into() }
    );

    let no_mix: String =
        BASE.lines().take_while(|l| !l.contains("[[mix]]")).collect::<Vec<_>>().join("\n");
    assert_eq!(
        expect_err(&no_mix),
        SpecError::Missing { what: "at least one [[mix]] entry".into() }
    );

    let no_name = BASE.replace("name = \"base\"", "");
    assert_eq!(expect_err(&no_name), SpecError::Missing { what: "workload.name".into() });
}

#[test]
fn unknown_names_are_typed() {
    let bad_section = format!("{BASE}\n[surprise]\nx = 1\n");
    assert_eq!(expect_err(&bad_section), SpecError::UnknownSection { section: "surprise".into() });

    let bad_key = BASE.replace("seed = 7", "seed = 7\nturbo = true");
    assert_eq!(
        expect_err(&bad_key),
        SpecError::UnknownKey { section: "workload".into(), key: "turbo".into() }
    );

    let bad_structure = BASE.replace("structure = \"count_min\"", "structure = \"bloom\"");
    assert_eq!(expect_err(&bad_structure), SpecError::UnknownStructure { name: "bloom".into() });

    let bad_generator = BASE.replace("kind = \"uniform\"", "kind = \"chaos\"");
    assert_eq!(expect_err(&bad_generator), SpecError::UnknownGenerator { name: "chaos".into() });
}

#[test]
fn out_of_domain_values_are_typed() {
    for (from, to, key) in [
        ("dimension = 1024", "dimension = 0", "workload.dimension"),
        ("read_ratio = 0.5", "read_ratio = 1.5", "workload.read_ratio"),
        ("read_ratio = 0.5", "read_ratio = -0.1", "workload.read_ratio"),
        ("batch = 8", "batch = 0", "workload.batch"),
        ("seed = 7", "seed = -3", "workload.seed"),
        ("initial_rps = 100", "initial_rps = 0", "ramp.initial_rps"),
        ("max_rps = 300", "max_rps = 50", "ramp.max_rps"),
        ("step_duration_ms = 50", "step_duration_ms = 0", "ramp.step_duration_ms"),
        ("weight = 2", "weight = 0", "mix.weight"),
        ("name = \"base\"", "name = \"Bad Name!\"", "workload.name"),
        ("seed = 7", "seed = \"seven\"", "workload.seed"),
    ] {
        match expect_err(&BASE.replace(from, to)) {
            SpecError::InvalidValue { key: k, .. } => assert_eq!(k, key, "{to}"),
            other => panic!("{to}: expected InvalidValue for {key}, got {other:?}"),
        }
    }
}

#[test]
fn syntax_errors_carry_line_numbers() {
    match expect_err("[workload]\nname \"no equals\"\n") {
        SpecError::Syntax { line, .. } => assert_eq!(line, 2),
        other => panic!("expected Syntax, got {other:?}"),
    }
    match expect_err("dimension = 1\n") {
        SpecError::KeyOutsideSection { line, key } => {
            assert_eq!((line, key.as_str()), (1, "dimension"));
        }
        other => panic!("expected KeyOutsideSection, got {other:?}"),
    }
    match expect_err("[workload]\nname = \"unterminated\n") {
        SpecError::Syntax { line, .. } => assert_eq!(line, 2),
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn comments_and_underscored_integers_parse() {
    let text = BASE
        .replace("dimension = 1024", "dimension = 1_024  # a comment")
        .replace("name = \"base\"", "name = \"base\" # trailing \" quote in comment");
    let spec = WorkloadSpec::parse(&text).expect("comments");
    assert_eq!(spec.dimension, 1024);
}

#[test]
fn reads_require_a_readable_structure() {
    // ams is the one catalog structure with no live query: an ams-only
    // mix is fine write-only but rejected once read_ratio > 0.
    let ams_only = BASE
        .replace("structure = \"count_min\"", "structure = \"ams\"")
        .replace("\n[[mix]]\nstructure = \"l0_sampler\"\n", "\n");
    assert_eq!(expect_err(&ams_only), SpecError::NoReadableStructure);

    let write_only = ams_only.replace("read_ratio = 0.5", "read_ratio = 0.0");
    let spec = WorkloadSpec::parse(&write_only).expect("write-only ams mix");
    assert!(spec.readable_mix().is_empty());
}

#[test]
fn unreadable_paths_are_typed_not_panics() {
    let err = WorkloadSpec::load(Path::new("/nonexistent/nowhere.toml")).unwrap_err();
    assert!(matches!(err, SpecError::Unreadable { .. }));
    // Display is wired for operator-facing messages.
    assert!(err.to_string().contains("nowhere.toml"));
}

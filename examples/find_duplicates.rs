//! Finding duplicates in click streams (the motivating application of
//! Section 3): detect a user id that appears more than once using only
//! polylogarithmic memory.
//!
//! Run with `cargo run --release --example find_duplicates`.

use lp_samplers::prelude::*;
use lps_stream::{
    duplicate_stream_n_minus_s, duplicate_stream_n_plus_1, duplicate_stream_n_plus_s,
};

fn main() {
    let n: u64 = 1 << 12;
    let delta = 0.1;
    let mut seeds = SeedSequence::new(99);

    // --- Regime 1: stream of length n + 1 (Theorem 3) -----------------------
    let (stream, dups) = duplicate_stream_n_plus_1(n, 5, &mut seeds);
    let mut finder = DuplicateFinder::new(n, delta, &mut seeds);
    finder.process_stream(&stream);
    let naive_bits = n; // a bitmap of seen ids
    println!("[n+1]  planted duplicates: {dups:?}");
    println!(
        "[n+1]  Theorem 3 finder: {:?} using {} bits (naive bitmap needs {} bits)",
        finder.report(),
        finder.bits_used(),
        naive_bits
    );

    // --- Regime 2: stream of length n − s (Theorem 4) -----------------------
    let s = 64u64;
    let (short_stream, short_dups) = duplicate_stream_n_minus_s(n, s, 3, &mut seeds);
    let mut short_finder = ShortStreamDuplicateFinder::new(n, s, delta, &mut seeds);
    short_finder.process_stream(&short_stream);
    println!("[n-s]  planted duplicates: {short_dups:?}");
    println!(
        "[n-s]  Theorem 4 finder: {:?} using {} bits",
        short_finder.report(),
        short_finder.bits_used()
    );

    // and the certificate case: a stream with no duplicates at all
    let (clean_stream, _) = duplicate_stream_n_minus_s(n, s, 0, &mut seeds);
    let mut clean_finder = ShortStreamDuplicateFinder::new(n, s, delta, &mut seeds);
    clean_finder.process_stream(&clean_stream);
    println!("[n-s]  duplicate-free stream: {:?} (an exact certificate)", clean_finder.report());

    // --- Regime 3: stream of length n + s (Section 3, final paragraph) ------
    let s_big = n / 2;
    let (long_stream, long_dups) = duplicate_stream_n_plus_s(n, s_big, &mut seeds);
    let mut long_finder = LongStreamDuplicateFinder::new(n, s_big, delta, &mut seeds);
    long_finder.process_stream(&long_stream);
    println!(
        "[n+s]  strategy {:?}, result {:?} using {} bits ({} true duplicates exist)",
        long_finder.strategy(),
        long_finder.report(),
        long_finder.bits_used(),
        long_dups.len()
    );

    // --- Sanity: compare against the exact (linear-memory) finder -----------
    let mut naive = NaiveDuplicateFinder::new();
    naive.process_stream(&stream);
    println!(
        "exact check: the [n+1] stream really contains {} duplicated ids",
        naive.all_duplicates().len()
    );
}

//! Heavy hitters over a general update stream: find the flows that dominate
//! network traffic even when flows can shrink (deletions / corrections),
//! for several values of p (Section 4.4 of the paper).
//!
//! Run with `cargo run --release --example heavy_hitters`.

use lp_samplers::prelude::*;
use lps_stream::zipf_stream;

fn main() {
    let n: u64 = 1 << 12;
    let phi = 0.1;
    let mut seeds = SeedSequence::new(7);

    // Zipfian traffic plus corrections: 10% of the head flow is retracted.
    let mut stream = zipf_stream(n, 50_000, 1.3, &mut seeds);
    let before = TruthVector::from_stream(&stream);
    for i in 0..n {
        let v = before.get(i);
        if v > 100 {
            stream.push(Update::new(i, -(v / 10)));
        }
    }
    let truth = TruthVector::from_stream(&stream);

    for p in [0.5, 1.0, 1.5, 2.0] {
        let mut hh = CountSketchHeavyHitters::new(n, p, phi, &mut seeds);
        hh.process(&stream);
        let reported = hh.report();
        let exact = exact_heavy_hitters(&truth, p, phi);
        let verdict = is_valid_heavy_hitter_set(&truth, p, phi, &reported);
        println!(
            "p = {p:>3}: reported {:>2} candidates, {:>2} exact φ-heavy hitters, valid = {:<5}, {} bits (m = {})",
            reported.len(),
            exact.len(),
            verdict.is_valid(),
            hh.bits_used(),
            hh.m()
        );
    }

    // Compare against the count-min baseline (p = 1, strict turnstile only).
    let mut cm = CountMinHeavyHitters::new(n, phi, &mut seeds);
    cm.process(&stream);
    let reported = cm.report();
    let verdict = is_valid_heavy_hitter_set(&truth, 1.0, phi, &reported);
    println!(
        "count-min baseline (p = 1): {} candidates, valid = {}, {} bits",
        reported.len(),
        verdict.is_valid(),
        cm.bits_used()
    );
}

//! Parallel sharded ingestion: split one turnstile stream across worker
//! threads, each owning an identically-seeded clone of the sketch, and
//! tree-merge the shards into a state bit-identical to sequential ingestion.
//! (Round-robin partitioning; see `partitioned_ingest.rs` for the key-range
//! strategy and the non-blocking session surface.)
//!
//! Run with `cargo run --release --example parallel_ingest`.

use std::time::Instant;

use lp_samplers::prelude::*;

fn mixed_workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
    let mut seeds = SeedSequence::new(seed);
    (0..len)
        .map(|_| {
            let delta = (seeds.next_below(9) as i64) - 4;
            Update::new(seeds.next_below(n), if delta == 0 { 1 } else { delta })
        })
        .collect()
}

fn main() {
    let n: u64 = 1 << 18;
    let updates = mixed_workload(n, 200_000, 0xD15);
    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    println!("{} updates over n = 2^18, host exposes {cores} CPU(s)", updates.len());

    // --- sparse recovery: shard, merge, and prove bit-identical state ---
    let mut seeds = SeedSequence::new(42);
    let proto = SparseRecovery::new(n, 8, &mut seeds);

    let t = Instant::now();
    let mut sequential = proto.clone();
    sequential.process_batch(&updates);
    let seq_elapsed = t.elapsed();

    for shards in [1usize, 2, 4] {
        let t = Instant::now();
        let mut session = EngineBuilder::new(&proto).shards(shards).session();
        session.ingest_blocking(&updates);
        let merged = session.seal().unwrap();
        let elapsed = t.elapsed();
        assert_eq!(
            merged.state_digest(),
            sequential.state_digest(),
            "sharded state must be bit-identical to sequential"
        );
        println!(
            "sparse recovery, {shards} shard(s): {:>7.1?} (sequential {:.1?}), \
             state digest {:#018x} == sequential",
            elapsed,
            seq_elapsed,
            merged.state_digest()
        );
    }

    // --- the Theorem 2 L0 sampler: the sample survives sharding too ---
    let mut seeds = SeedSequence::new(43);
    let l0_proto = L0Sampler::new(n, 0.25, &mut seeds);
    let mut l0_seq = l0_proto.clone();
    l0_seq.process_batch(&updates);
    let l0_merged = parallel_ingest(&l0_proto, &updates, 4);
    assert_eq!(l0_merged.state_digest(), l0_seq.state_digest());
    match (l0_merged.sample(), l0_seq.sample()) {
        (Some(a), Some(b)) => {
            assert_eq!((a.index, a.estimate), (b.index, b.estimate));
            println!(
                "L0 sampler: 4-shard merge samples ({}, {}) — same as sequential",
                a.index, a.estimate
            );
        }
        (a, b) => {
            assert_eq!(a.is_some(), b.is_some());
            println!("L0 sampler: both parallel and sequential failed on this instance");
        }
    }

    println!("parallel ingestion is exact: linear sketches make sharding free of error");
}

//! Strategy-driven ingestion through the sans-io session API: the same
//! stream pushed through a round-robin plan (replicated shards, additive
//! merge) and a key-range plan (partitioned coordinate space, disjoint-union
//! merge), both landing bit-identically on the sequential state — plus a
//! poll-driven `offer`/`drain` loop showing how the engine sits behind an
//! event loop without ever blocking the dispatcher, and an
//! approximate-tolerance plan unlocking a float structure.
//!
//! Run with `cargo run --release --example partitioned_ingest`.

use std::task::Poll;

use lp_samplers::prelude::*;

fn mixed_workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
    let mut seeds = SeedSequence::new(seed);
    (0..len)
        .map(|_| {
            let delta = (seeds.next_below(9) as i64) - 4;
            Update::new(seeds.next_below(n), if delta == 0 { 1 } else { delta })
        })
        .collect()
}

fn main() {
    let n: u64 = 1 << 18;
    let updates = mixed_workload(n, 150_000, 0x4E7);
    let shards = 4;

    let mut seeds = SeedSequence::new(42);
    let proto = SparseRecovery::new(n, 8, &mut seeds);
    let mut sequential = proto.clone();
    sequential.process_batch(&updates);
    println!(
        "{} updates over n = 2^18, sequential digest {:#018x}",
        updates.len(),
        sequential.state_digest()
    );

    // --- strategy 1: round robin (replicated shards, additive merge) ---
    let mut session = EngineBuilder::new(&proto).shards(shards).session();
    session.ingest_blocking(&updates);
    let round_robin = session.seal().unwrap();
    assert_eq!(round_robin.state_digest(), sequential.state_digest());
    println!("round-robin  x{shards}: digest {:#018x} == sequential", round_robin.state_digest());

    // --- strategy 2: key range (partitioned space, disjoint-union merge) ---
    let plan = KeyRange::new(n, shards);
    let mut session = EngineBuilder::new(&proto).plan(plan).session();
    session.ingest_blocking(&updates);
    let key_range = session.seal().unwrap();
    assert_eq!(key_range.state_digest(), sequential.state_digest());
    println!("key-range    x{shards}: digest {:#018x} == sequential", key_range.state_digest());

    // --- the sans-io surface: a poll loop that never blocks on offer ---
    let mut session =
        EngineBuilder::new(&proto).plan(KeyRange::new(n, shards)).batch_size(256).session();
    let mut rest = &updates[..];
    let mut pendings = 0u64;
    while !rest.is_empty() {
        match session.offer(rest) {
            Poll::Ready(accepted) => rest = &rest[accepted..],
            // a real event loop would go service sockets here; we just yield
            Poll::Pending => {
                pendings += 1;
                std::thread::yield_now();
            }
        }
    }
    while session.drain().is_pending() {
        std::thread::yield_now();
    }
    let polled = session.seal().unwrap();
    assert_eq!(polled.state_digest(), sequential.state_digest());
    // `pendings` depends on thread scheduling, so it stays out of the
    // (byte-reproducible) output
    let _ = pendings;
    println!(
        "sans-io poll loop: never blocked the dispatcher, digest {:#018x} == sequential",
        polled.state_digest()
    );

    // --- float structures shard too, behind an explicit opt-in ---
    let mut seeds = SeedSequence::new(43);
    let pstable = PStableSketch::with_default_rows(n, 1.0, &mut seeds);
    let mut sequential_ps = pstable.clone();
    LinearSketch::process_batch(&mut sequential_ps, &updates);
    let mut session = EngineBuilder::new(&pstable).plan(KeyRange::approximate(n, shards)).session();
    session.ingest_blocking(&updates);
    let sharded_ps = session.seal().unwrap();
    let (a, b) = (sharded_ps.estimate(), sequential_ps.estimate());
    assert!((a - b).abs() <= 1e-9 * a.abs().max(b.abs()), "drift beyond the documented bound");
    println!(
        "p-stable L1 estimate under Tolerance::Approximate: sharded {a:.6} vs sequential {b:.6}"
    );

    println!("partitioning strategy is a pure performance choice: the bits agree");
}

//! Quickstart: Lp-sampling a turnstile stream and comparing against the
//! exact Lp distribution.
//!
//! Run with `cargo run --release --example quickstart`.

use lp_samplers::prelude::*;
use lps_stream::zipf_stream;

fn main() {
    let n: u64 = 1 << 10;
    let p = 1.0;
    let epsilon = 0.3;
    let delta = 0.1;

    // A Zipfian insert stream followed by deletions of half the head's mass:
    // the kind of stream where insertion-only samplers go wrong.
    let mut seeds = SeedSequence::new(2024);
    let mut stream = zipf_stream(n, 10_000, 1.2, &mut seeds);
    let truth_before = TruthVector::from_stream(&stream);
    let heaviest = (0..n).max_by_key(|&i| truth_before.get(i)).unwrap();
    let remove = truth_before.get(heaviest) / 2;
    stream.push(Update::new(heaviest, -remove));

    let truth = TruthVector::from_stream(&stream);
    println!("stream: {} updates over n = {n}", stream.len());
    println!("‖x‖₁ = {}, support size = {}", truth.lp_norm(1.0), truth.l0());

    // Build the paper's L1 sampler with 1 − δ success probability.
    let copies = repetitions_for(p, epsilon, delta);
    let mut sampler =
        RepeatedSampler::new(copies, &mut seeds, |s| PrecisionLpSampler::new(n, p, epsilon, s));
    sampler.process_stream(&stream);
    println!(
        "sampler: {copies} parallel copies, {} bits total ({} bits/copy)",
        sampler.bits_used(),
        sampler.bits_used() / copies as u64
    );

    match sampler.sample() {
        Some(sample) => {
            let exact = truth.get(sample.index);
            println!(
                "sampled coordinate {} with estimate {:.2} (exact value {exact})",
                sample.index, sample.estimate
            );
        }
        None => println!("the sampler failed on this instance (probability ≤ {delta})"),
    }

    // Empirical check of the output distribution using many independent
    // samplers (enough trials to see the shape; the E1 experiment in
    // `lps-bench` does the high-resolution version).
    let trials = 400;
    let reference = truth.lp_distribution(p).unwrap();
    let mut empirical = EmpiricalDistribution::new(n);
    for t in 0..trials {
        let mut s = SeedSequence::new(31_000 + t);
        let mut one = PrecisionLpSampler::new(n, p, epsilon, &mut s);
        one.process_stream(&stream);
        if let Some(sample) = one.sample() {
            empirical.record(sample.index);
        }
    }
    println!(
        "distribution check over {} successful single-shot samples: total variation = {:.4}",
        empirical.total(),
        empirical.total_variation(&reference)
    );
}

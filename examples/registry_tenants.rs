//! A multi-tenant sketch fleet behind one registry: millions of possible
//! tenant keys, a few thousand resident slots. Zipf-distributed tenant
//! traffic is routed through a [`SketchRegistry`], the LRU bound evicts cold
//! tenants into spill segments, hot ones materialize from sparse logs into
//! dense sketches, and evicted tenants restore transparently — with digests
//! bit-identical to a tenant that was never evicted.
//!
//! Run with `cargo run --release --example registry_tenants`.

use lp_samplers::prelude::*;
use lp_samplers::stream::Zipf;

fn main() {
    let tenants: u64 = 50_000;
    let updates = 40_000usize;
    let dimension: u64 = 1 << 20;

    // One prototype seeds the whole fleet: every tenant shares its seed
    // section, so any two tenants stay mutually mergeable.
    let mut seeds = SeedSequence::new(0xF1EE7);
    let proto = SparseRecovery::new(dimension, 8, &mut seeds);

    // Residency is bounded far below the tenant space, so the traffic must
    // constantly evict and restore.
    let config =
        RegistryConfig::new().max_resident(1024).materialize_threshold(32).spill_backlog(128);
    let mut registry = SketchRegistry::new(proto.clone(), config, MemorySpill::new());

    // Heavy-tailed tenant traffic: a handful of hot tenants absorb most
    // updates; the tail sees one or two each.
    let zipf = Zipf::new(tenants, 1.05);
    let mut traffic_seeds = SeedSequence::new(0x7E4A);
    let mut routed = 0u64;
    for _ in 0..updates {
        let tenant = zipf.sample(&mut traffic_seeds);
        let update = Update::new(traffic_seeds.next_below(dimension), 1);
        registry.route_blocking(tenant, std::slice::from_ref(&update)).expect("route");
        routed += 1;
    }
    registry.drain().expect("drain");

    let stats = registry.stats().clone();
    println!("routed {routed} updates over a {tenants}-tenant key space (Zipf α = 1.05)");
    println!(
        "residency: {} resident / {} spilled (cap 1024), ~{} KiB resident",
        registry.resident_count(),
        registry.spilled_count(),
        registry.resident_bytes_estimate() / 1024
    );
    println!(
        "lifecycle: {} evictions, {} restores, {} sparse→dense materializations",
        stats.evictions, stats.restores, stats.materializations
    );
    assert!(registry.resident_count() <= 1024, "residency cap must hold");
    assert!(stats.evictions > 0 && stats.restores > 0, "traffic must overflow residency");

    // Query never changes residency: tenant 1 (the hottest key) answers from
    // wherever it lives — resident slab, outbox, or spill segment.
    let recovered = registry
        .query(1, |sketch| sketch.recover().entries().map(<[_]>::to_vec))
        .expect("query")
        .expect("tenant 1 saw traffic");
    match recovered {
        Some(entries) => println!(
            "tenant 1 recovers exactly: {} nonzero coordinates, first {:?}",
            entries.len(),
            &entries[..entries.len().min(3)]
        ),
        None => println!("tenant 1 exceeded its 8-sparse recovery budget (expected for a hot key)"),
    }

    // The restore guarantee: route the same history into a roomy registry
    // that never evicts, and the digests match bit-for-bit.
    let roomy_config = RegistryConfig::new().max_resident(tenants as usize);
    let mut roomy = SketchRegistry::new(proto, roomy_config, MemorySpill::new());
    let zipf = Zipf::new(tenants, 1.05);
    let mut replay_seeds = SeedSequence::new(0x7E4A);
    for _ in 0..updates {
        let tenant = zipf.sample(&mut replay_seeds);
        let update = Update::new(replay_seeds.next_below(dimension), 1);
        roomy.route_blocking(tenant, std::slice::from_ref(&update)).expect("route");
    }
    let mut checked = 0;
    for tenant in [1u64, 2, 17, 4242] {
        let evicted_path = registry.digest(tenant).expect("digest");
        let roomy_path = roomy.digest(tenant).expect("digest");
        assert_eq!(evicted_path, roomy_path, "tenant {tenant} digest must survive eviction");
        if evicted_path.is_some() {
            checked += 1;
        }
    }
    println!("digest check: {checked} tenants bit-identical across evicted vs never-evicted paths");

    // Scale out: the same traffic through a 4-shard registry, tenants
    // partitioned by hash so each shard owns a disjoint fleet slice.
    let mut seeds = SeedSequence::new(0xF1EE7);
    let proto = SparseRecovery::new(dimension, 8, &mut seeds);
    let sharded_config =
        RegistryConfig::new().max_resident(256).materialize_threshold(32).spill_backlog(128);
    let mut sharded = ShardedRegistry::new(&proto, 4, sharded_config, |_| MemorySpill::new());
    let zipf = Zipf::new(tenants, 1.05);
    let mut shard_seeds = SeedSequence::new(0x7E4A);
    for _ in 0..updates {
        let tenant = zipf.sample(&mut shard_seeds);
        let update = Update::new(shard_seeds.next_below(dimension), 1);
        sharded.route_blocking(tenant, std::slice::from_ref(&update)).expect("route");
    }
    sharded.drain().expect("drain");
    assert_eq!(
        sharded.digest(1).expect("digest"),
        registry.digest(1).expect("digest"),
        "sharding must not change any tenant's state"
    );
    println!(
        "sharded x4: {} resident / {} spilled across shards, tenant 1 digest unchanged",
        sharded.resident_count(),
        sharded.spilled_count()
    );
}

//! Locating where two replicas diverge with a single polylog-size message —
//! the universal relation protocol of Proposition 5, plus the L0 sampler used
//! directly to watch a dynamic (insert/delete) set.
//!
//! Scenario: two sites hold bit-vectors describing which of n objects they
//! store. The vectors are supposed to be identical; when they are not, site A
//! sends one small sketch and site B names an object on which they disagree.
//!
//! Run with `cargo run --release --example replica_divergence`.

use lp_samplers::prelude::*;
use lps_core::L0Sampler;

fn main() {
    let n: u64 = 1 << 14;
    let mut seeds = SeedSequence::new(1234);

    // Two replicas differing in a handful of positions.
    let divergence = 6u64;
    let instance = UrInstance::random(n, divergence, &mut seeds);
    println!(
        "replicas of {n} objects differ in {} positions: {:?}",
        divergence,
        instance.differing_indices()
    );

    // One-round sketch protocol (Proposition 5).
    let protocol = UrSketchProtocol::new(0.1);
    let outcome = protocol.run(&instance, &mut seeds);
    match outcome.answer {
        Some(i) => println!(
            "protocol reports divergent object {i} (valid = {}) with a {}-bit message",
            instance.is_valid_answer(i),
            outcome.message_bits
        ),
        None => println!(
            "protocol failed (probability ≤ 0.1); message was {} bits",
            outcome.message_bits
        ),
    }
    println!("sending the whole replica description would cost {n} bits");

    // The same machinery as a dynamic-set sampler: an L0 sampler watching a
    // churning set of live objects returns a uniformly random live object.
    let mut sampler = L0Sampler::new(n, 0.05, &mut seeds);
    let mut live = Vec::new();
    for i in 0..5_000u64 {
        let obj = (i * 2_654_435_761) % n;
        sampler.process_update(Update::new(obj, 1));
        live.push(obj);
    }
    // churn: delete 90% of them again
    for (k, &obj) in live.iter().enumerate() {
        if k % 10 != 0 {
            sampler.process_update(Update::new(obj, -1));
        }
    }
    match sampler.sample() {
        Some(sample) => println!(
            "L0 sampler picked live object {} (multiplicity {}) using {} bits",
            sample.index,
            sample.estimate,
            sampler.bits_used()
        ),
        None => println!("L0 sampler failed"),
    }
}

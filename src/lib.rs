//! # lp-samplers
//!
//! A Rust reproduction of *"Tight Bounds for Lp Samplers, Finding Duplicates
//! in Streams, and Related Problems"* (Hossein Jowhari, Mert Sağlam, Gábor
//! Tardos; PODS 2011).
//!
//! This facade crate re-exports the whole workspace so applications can pull
//! in one dependency:
//!
//! * [`hash`] — k-wise independent hashing, Mersenne-prime field, Nisan PRG.
//! * [`stream`] — turnstile update streams, workload generators, ground
//!   truth, statistics, space accounting.
//! * [`sketch`] — count-sketch, count-min/median, AMS, p-stable norm
//!   estimation, exact sparse recovery.
//! * [`sampler`] — the paper's precision Lp sampler and zero-error L0
//!   sampler, repetition wrappers, reservoir sampling, AKO and FIS baselines.
//! * [`duplicates`] — finding duplicates in streams of length n+1, n−s, n+s.
//! * [`heavy`] — count-sketch heavy hitters for all `p ∈ (0, 2]`.
//! * [`engine`] — the parallel sharded ingestion engine built on sketch
//!   mergeability (shard across threads, tree-merge at the end), plus
//!   checkpoint/restore and cross-process merging over the versioned
//!   `Persist` wire format.
//! * [`registry`] — the multi-tenant sketch registry: fleets of keyed
//!   sketches sharing one seed pool, with lazy sparse tenants, LRU eviction
//!   to a spill backend, and transparent restore.
//! * [`service`] — the streaming sketch service: a framed `LPSW` wire
//!   protocol with a sans-io codec, a blocking socket server that merges
//!   shard checkpoint uploads and answers live queries from published
//!   snapshots, and the matching client.
//! * [`commgames`] — augmented indexing, the universal relation, and the
//!   executable lower-bound reductions.
//!
//! ## Quick start
//!
//! ```
//! use lp_samplers::prelude::*;
//!
//! // A turnstile stream: insertions and deletions over 1024 coordinates.
//! let mut stream = UpdateStream::new(1024, TurnstileModel::General);
//! stream.push(Update::new(3, 10));
//! stream.push(Update::new(700, -4));
//! stream.push(Update::new(3, -2));
//!
//! // Sample a coordinate approximately proportionally to |x_i| (p = 1).
//! let mut seeds = SeedSequence::new(7);
//! let copies = repetitions_for(1.0, 0.3, 0.1);
//! let mut sampler = RepeatedSampler::new(copies, &mut seeds, |s| {
//!     PrecisionLpSampler::new(1024, 1.0, 0.3, s)
//! });
//! sampler.process_stream(&stream);
//! if let Some(sample) = sampler.sample() {
//!     assert!(sample.index == 3 || sample.index == 700);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lps_commgames as commgames;
pub use lps_core as sampler;
pub use lps_duplicates as duplicates;
pub use lps_engine as engine;
pub use lps_hash as hash;
pub use lps_heavy as heavy;
pub use lps_registry as registry;
pub use lps_service as service;
pub use lps_sketch as sketch;
pub use lps_stream as stream;

/// Convenient glob-import surface covering the most common types.
pub mod prelude {
    pub use lps_commgames::{
        AugmentedIndexingInstance, DuplicatesToUr, HeavyHittersToAugmentedIndexing, UrInstance,
        UrSketchProtocol, UrToAugmentedIndexing,
    };
    pub use lps_core::{
        repetitions_for, AkoSampler, ExactSampler, FisL0Sampler, L0Randomness, L0Sampler,
        LpSampler, PrecisionLpSampler, RepeatedSampler, ReservoirSampler, Sample,
    };
    pub use lps_duplicates::{
        DuplicateFinder, DuplicateResult, LongStreamDuplicateFinder, NaiveDuplicateFinder,
        PriorWorkDuplicateFinder, ShortStreamDuplicateFinder,
    };
    pub use lps_engine::{
        merge_checkpointed, merge_encoded, parallel_ingest, partitioned_ingest, EngineBuilder,
        IngestSession, KeyRange, RoundRobin, ShardIngest, ShardPlan, Tolerance,
    };
    pub use lps_hash::SeedSequence;
    pub use lps_heavy::{
        exact_heavy_hitters, is_valid_heavy_hitter_set, CountMinHeavyHitters,
        CountSketchHeavyHitters,
    };
    pub use lps_registry::{
        LazySketch, MemorySpill, RegistryConfig, ShardedRegistry, SketchRegistry, SpillBackend,
    };
    pub use lps_service::{
        CatalogPrototypes, Frame, FrameCodec, ProtoError, Query, Reply, RunningServer,
        ServiceClient, ServiceConfig, ServiceError,
    };
    pub use lps_sketch::{
        AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, DecodeError, LinearSketch,
        Mergeable, PStableSketch, Persist, RecoveryOutput, SparseRecovery, StateDigest,
    };
    pub use lps_stream::{
        EmpiricalDistribution, SpaceUsage, TruthVector, TurnstileModel, Update, UpdateStream,
    };
}

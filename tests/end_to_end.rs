//! Cross-crate integration tests: streams → samplers → applications,
//! exercised through the public facade crate exactly as a downstream user
//! would.

use lp_samplers::prelude::*;
use lps_stream::{duplicate_stream_n_plus_1, sparse_vector_stream, zipf_stream};

#[test]
fn l1_sampler_distribution_on_zipf_stream_with_deletions() {
    let n: u64 = 512;
    let mut seeds = SeedSequence::new(1);
    let mut stream = zipf_stream(n, 6_000, 1.2, &mut seeds);
    // delete a third of the heaviest coordinate's mass
    let truth_before = TruthVector::from_stream(&stream);
    let heavy = (0..n).max_by_key(|&i| truth_before.get(i)).unwrap();
    stream.push(Update::new(heavy, -truth_before.get(heavy) / 3));
    let truth = TruthVector::from_stream(&stream);
    let reference = truth.lp_distribution(1.0).unwrap();

    let mut empirical = EmpiricalDistribution::new(n);
    let trials = 600u64;
    for t in 0..trials {
        let mut s = SeedSequence::new(10_000 + t);
        let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.4, &mut s);
        sampler.process_stream(&stream);
        if let Some(sample) = sampler.sample() {
            empirical.record(sample.index);
        }
    }
    assert!(empirical.total() > trials / 8, "too few successful samples");
    // Heavy coordinates must carry roughly their share: check the single
    // heaviest coordinate's sampled frequency against its true mass.
    let freq = empirical.probability(heavy);
    let mass = reference[heavy as usize];
    assert!(
        (freq - mass).abs() < 0.5 * mass + 0.05,
        "heaviest coordinate sampled with frequency {freq:.3}, true mass {mass:.3}"
    );
}

#[test]
fn l0_sampler_uniform_on_dynamic_set() {
    let n: u64 = 1024;
    let mut seeds = SeedSequence::new(2);
    let stream = sparse_vector_stream(n, 32, 12, &mut seeds);
    let truth = TruthVector::from_stream(&stream);
    let reference = truth.lp_distribution(0.0).unwrap();

    let mut empirical = EmpiricalDistribution::new(n);
    for t in 0..800u64 {
        let mut s = SeedSequence::new(20_000 + t);
        let mut sampler = lps_core::L0Sampler::new(n, 0.2, &mut s);
        sampler.process_stream(&stream);
        if let Some(sample) = sampler.sample() {
            // zero relative error: estimates are exact
            assert_eq!(sample.estimate, truth.get(sample.index) as f64);
            empirical.record(sample.index);
        }
    }
    let tv = empirical.total_variation(&reference);
    assert!(tv < 0.15, "L0 sampler output too far from uniform over the support: {tv}");
}

#[test]
fn duplicates_pipeline_agrees_with_naive_finder() {
    let n: u64 = 512;
    let mut seeds = SeedSequence::new(3);
    let (stream, planted) = duplicate_stream_n_plus_1(n, 4, &mut seeds);

    let mut naive = NaiveDuplicateFinder::new();
    naive.process_stream(&stream);
    assert_eq!(naive.all_duplicates(), planted);

    let mut successes = 0;
    for t in 0..15u64 {
        let mut s = SeedSequence::new(30_000 + t);
        let mut finder = DuplicateFinder::new(n, 0.2, &mut s);
        finder.process_stream(&stream);
        if let DuplicateResult::Duplicate(d) = finder.report() {
            assert!(planted.contains(&d), "reported non-duplicate {d}");
            successes += 1;
        }
    }
    assert!(successes >= 9, "Theorem 3 finder succeeded only {successes}/15 times");
}

#[test]
fn heavy_hitters_and_sampler_agree_on_the_heaviest_coordinate() {
    let n: u64 = 1024;
    let mut seeds = SeedSequence::new(4);
    let mut stream = zipf_stream(n, 20_000, 1.5, &mut seeds);
    // churn that cancels
    for i in 0..n {
        stream.push(Update::new(i, 3));
        stream.push(Update::new(i, -3));
    }
    let truth = TruthVector::from_stream(&stream);
    let heaviest = (0..n).max_by_key(|&i| truth.get(i).abs()).unwrap();

    let phi = 0.2;
    let mut hh = CountSketchHeavyHitters::new(n, 1.0, phi, &mut seeds);
    hh.process(&stream);
    let reported = hh.report_with_norm(truth.lp_norm(1.0));
    assert!(reported.contains(&heaviest));
    assert!(is_valid_heavy_hitter_set(&truth, 1.0, phi, &reported).is_valid());

    // the L1 sampler should hit the same coordinate reasonably often
    let mut hits = 0;
    let mut samples = 0;
    for t in 0..200u64 {
        let mut s = SeedSequence::new(40_000 + t);
        let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.4, &mut s);
        sampler.process_stream(&stream);
        if let Some(sample) = sampler.sample() {
            samples += 1;
            if sample.index == heaviest {
                hits += 1;
            }
        }
    }
    assert!(samples > 0);
    let truth_share = truth.get(heaviest).abs() as f64 / truth.lp_norm(1.0);
    assert!(
        hits as f64 / samples as f64 > 0.3 * truth_share,
        "sampler hit the heaviest coordinate {hits}/{samples}, true share {truth_share:.3}"
    );
}

#[test]
fn reduction_chain_solves_augmented_indexing_with_advantage() {
    // augmented indexing -> UR (Theorem 6) -> L0 sampling protocol (Prop. 5)
    let red = UrToAugmentedIndexing::new(5, 3, 0.2);
    let mut seeds = SeedSequence::new(5);
    let trials = 20;
    let mut correct = 0;
    for _ in 0..trials {
        let inst = AugmentedIndexingInstance::random(5, 8, &mut seeds);
        if red.run(&inst, &mut seeds).correct {
            correct += 1;
        }
    }
    // random guessing over the alphabet succeeds with probability 1/8
    assert!(correct * 3 >= trials, "only {correct}/{trials} correct — no advantage over guessing");
}

#[test]
fn heavy_hitter_reduction_recovers_symbols_with_exact_oracle() {
    let red = HeavyHittersToAugmentedIndexing::new(10, 5, 1.5, 0.25);
    let mut seeds = SeedSequence::new(6);
    for _ in 0..25 {
        let inst = AugmentedIndexingInstance::random(10, 32, &mut seeds);
        assert!(red.run_with_exact_oracle(&inst).correct);
    }
}

#[test]
fn space_reported_in_paper_model_not_heap_bytes() {
    // The bit-model accounting must be stable across equal configurations and
    // scale polylogarithmically in n for the paper's structures.
    let mut s1 = SeedSequence::new(7);
    let mut s2 = SeedSequence::new(8);
    let a = PrecisionLpSampler::new(1 << 10, 1.0, 0.25, &mut s1);
    let b = PrecisionLpSampler::new(1 << 10, 1.0, 0.25, &mut s2);
    assert_eq!(a.bits_used(), b.bits_used(), "space must not depend on the seed");

    let mut s3 = SeedSequence::new(9);
    let big = PrecisionLpSampler::new(1 << 20, 1.0, 0.25, &mut s3);
    let ratio = big.bits_used() as f64 / a.bits_used() as f64;
    assert!(ratio < 8.0, "space grew {ratio:.1}x while n grew 1024x — should be polylog");
}

//! Smoke tests: the shipped examples must build and exit 0.
//!
//! `cargo test` always compiles the package's examples, so the binaries are
//! guaranteed to sit in `target/<profile>/examples/` next to this test
//! binary's `deps/` directory; we invoke them directly rather than going
//! through a nested `cargo run` (which would contend for the build lock).

use std::path::PathBuf;
use std::process::Command;

fn example_binary(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // strip the test binary file name -> .../deps
    if dir.ends_with("deps") {
        dir.pop(); // -> target/<profile>
    }
    dir.join("examples").join(name)
}

fn run_example(name: &str) {
    let bin = example_binary(name);
    assert!(
        bin.exists(),
        "example binary {} not found at {} (cargo test should have built it)",
        name,
        bin.display()
    );
    let output = Command::new(&bin).output().expect("spawn example");
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(!output.stdout.is_empty(), "example {name} printed nothing on stdout");
}

#[test]
fn quickstart_example_exits_zero() {
    run_example("quickstart");
}

#[test]
fn find_duplicates_example_exits_zero() {
    run_example("find_duplicates");
}

#[test]
fn heavy_hitters_example_exits_zero() {
    run_example("heavy_hitters");
}

#[test]
fn replica_divergence_example_exits_zero() {
    run_example("replica_divergence");
}

#[test]
fn parallel_ingest_example_exits_zero() {
    run_example("parallel_ingest");
}

#[test]
fn partitioned_ingest_example_exits_zero() {
    run_example("partitioned_ingest");
}

#[test]
fn registry_tenants_example_exits_zero() {
    run_example("registry_tenants");
}

//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so this crate vendors the small slice of criterion's API that
//! the workspace's `benches/` files use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Benchmarks really run (a calibrated timing
//! loop with median-of-samples reporting); they are just far less
//! statistically sophisticated than the real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// A value whose observation prevents the optimizer from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time run before measurement begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (size, mt, wt) = (self.sample_size, self.measurement_time, self.warm_up_time);
        run_benchmark(name, size, mt, wt, f);
        self
    }

    /// Hook called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Override the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.measurement_time, self.warm_up_time, f);
        self
    }

    /// Benchmark a closure that also receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.measurement_time, self.warm_up_time, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Build an id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { repr: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

/// Conversion into the string form of a benchmark id.
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.repr
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations per sample, chosen during calibration.
    iters_per_sample: u64,
    /// Collected per-iteration times in nanoseconds.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to fill the configured
    /// measurement window, and record per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count taking ≥ ~1/sample_size of the
        // measurement window, so all samples together roughly fill it.
        let mut iters: u64 = 1;
        let per_sample_target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= per_sample_target.min(0.05) || iters >= u64::MAX / 2 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    // In `cargo test`'s bench-compilation pass (and `cargo bench --no-run`)
    // nothing executes; when run, keep output terse and runtimes short.
    let mut bencher =
        Bencher { iters_per_sample: 1, samples: Vec::new(), sample_size, measurement_time };
    // Warm-up: run the closure once before timing (the closure itself loops).
    let _ = warm_up_time;
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<60} (no measurement: closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    println!(
        "{name:<60} time: [{} {} {}]  ({} iters/sample)",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        bencher.iters_per_sample
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

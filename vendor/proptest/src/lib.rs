//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so this crate vendors the slice of proptest's API that the
//! workspace's property tests use: the [`proptest!`] macro (including
//! `#![proptest_config(..)]`), [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], [`arbitrary::any`], range and tuple strategies,
//! [`collection::vec`], and [`sample::select`].
//!
//! Differences from the real crate: generation is driven by a deterministic
//! splitmix64 stream keyed on the property name and case index (so failures
//! reproduce across runs), rejected cases are skipped rather than retried,
//! and there is no shrinking — a failing case reports its inputs via the
//! assertion message only.

use std::marker::PhantomData;

/// Deterministic test-case RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Rejection sampling to avoid modulo bias on huge bounds.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over a string, used to key the per-property RNG stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Test-runner configuration and error types, mirroring
/// `proptest::test_runner`.
pub mod test_runner {
    /// Per-property configuration (`ProptestConfig` in the real crate).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should be skipped.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// `Result` alias used by generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for ::std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let width = (self.end as i128 - self.start as i128) as u64;
                        let off = rng.next_below(width);
                        (self.start as i128 + off as i128) as $t
                    }
                }
                impl Strategy for ::std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let width = (end as i128 - start as i128) as u64;
                        if width == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        let off = rng.next_below(width + 1);
                        (start as i128 + off as i128) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {
            $(
                #[allow(non_snake_case)]
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

    /// Reference forwarding so `&strategy` is itself a strategy.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::{PhantomData, TestRng};

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values spanning a wide range of magnitudes.
            let mag = rng.next_f64() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mag.exp2() * (1.0 + rng.next_f64())
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Admissible length range for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { start: r.start, end_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *r.start(), end_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end_exclusive, "empty size range");
            let width = (self.size.end_exclusive - self.size.start) as u64;
            let len = self.size.start + rng.next_below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)` — a vector of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies, mirroring `proptest::sample`.
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over an empty list");
            let i = rng.next_below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// `select(options)` — pick one of the given values per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supports the `#![proptest_config(..)]` header, `mut` argument patterns,
/// multiple properties per invocation, and helper items between properties
/// are not supported (keep helpers outside the macro, as this workspace does).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let name_key = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(name_key ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| { { $body } Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed at case {}: {}", stringify!($name), case, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// Fallible inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
